#ifndef ROTOM_OBS_EXPOSITION_H_
#define ROTOM_OBS_EXPOSITION_H_

// Renders obs::Snapshot() for external scrapers. Two forms exist: the JSON
// object from obs/metrics.h (SnapshotJson, used by the benches and the
// `/snapshotz` endpoint) and the Prometheus text exposition format produced
// here (used by the `/metrics` endpoint of serve/obs_http.h and the SIGUSR1
// snapshot dump). OBSERVABILITY.md ("Scrape surface") documents what a
// scrape contains; scripts/check_obs_docs.sh keeps that catalog honest.
//
// Name mapping. The registry's dotted names ("serve.queue_wait_us") are not
// valid Prometheus metric names, so every non-[a-zA-Z0-9_] byte becomes an
// underscore on the metric line — and the original dotted name is carried
// verbatim in the `# HELP` comment, so a scrape remains greppable by the
// names OBSERVABILITY.md catalogs:
//
//   # HELP serve_queue_wait_us serve.queue_wait_us
//   # TYPE serve_queue_wait_us histogram
//   serve_queue_wait_us_bucket{le="0"} 0
//   ...
//
// Histograms render their log2 buckets cumulatively (`_bucket{le="..."}`
// lines from Histogram::BucketUpperBound, trailing empty buckets elided,
// closed by `+Inf`) plus `_sum` and `_count`, which is exactly the shape
// Prometheus expects for histogram_quantile().
//
// When instrumentation is disabled (ROTOM_METRICS=off) the snapshot is
// empty and PrometheusText() returns an empty string — an empty payload is
// a valid exposition, so scrapers keep working across the switch.

#include <string>

#include "obs/metrics.h"

namespace rotom {
namespace obs {

/// Content-Type a conforming scraper expects for the text exposition.
inline constexpr const char kPrometheusContentType[] =
    "text/plain; version=0.0.4";

/// Renders one scrape in the Prometheus text exposition format described
/// above. Deterministic given the snapshot (names are already sorted).
std::string PrometheusText(const SnapshotData& snapshot);

/// Convenience: PrometheusText(Snapshot()). Empty string when disabled.
std::string PrometheusText();

/// Installs a SIGUSR1 handler that dumps PrometheusText() to `path`
/// (truncate-then-write), for environments where binding even a loopback
/// port is off the table. Empty `path` falls back to the ROTOM_OBS_SNAPSHOT
/// environment variable; when both are empty nothing is installed. The
/// handler allocates, which is formally signal-unsafe — same documented
/// trade-off as the crash handler's trace flush (obs/runlog.h): SIGUSR1 is
/// operator-initiated, and a lost dump beats no dump mechanism at all.
/// Idempotent; the last configured path wins.
void InstallSnapshotSignalHandler(const std::string& path = "");

}  // namespace obs
}  // namespace rotom

#endif  // ROTOM_OBS_EXPOSITION_H_
