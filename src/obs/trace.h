#ifndef ROTOM_OBS_TRACE_H_
#define ROTOM_OBS_TRACE_H_

// Scoped-span tracer for the training pipeline. ROTOM_TRACE_SPAN("phase")
// times the enclosing scope and feeds two sinks:
//
//   1. A histogram metric named `span.<phase>.us` in the obs registry (so
//      obs::Snapshot() carries the per-phase step breakdown; see
//      obs/metrics.h). Recorded whenever metrics are enabled.
//   2. A per-thread ring buffer of (name, start, duration, thread) events,
//      dumpable as Chrome trace_event JSON that loads directly in
//      chrome://tracing / https://ui.perfetto.dev. Recorded only while a
//      trace path is set — via the ROTOM_TRACE=path.json environment
//      variable (the dump is written automatically at process exit) or
//      SetTracePath().
//
// Cost model: with both sinks idle a span is one relaxed atomic load per
// scope (no clock read). With metrics on it is two steady_clock reads plus
// one histogram Record(). Spans never touch an Rng and never synchronize
// with other threads except the owning thread's buffer mutex (uncontended
// outside of dumps), so instrumentation cannot perturb training numerics or
// schedules in any way that affects results (pipeline_determinism_test
// asserts bit-identical trajectories with tracing on).
//
// Thread-safety: all functions here are safe to call from any thread. Spans
// are scoped to one thread (they are stack objects); each thread writes
// only its own ring buffer. Dumping while spans are still being recorded is
// safe but may miss in-flight events — dump after workloads quiesce.
//
// Buffering: each thread's ring holds kTraceEventCapacity events; older
// events are overwritten once the ring wraps and the per-process overwrite
// total is reported as `trace.dropped_events` in the dump's metadata.

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace rotom {
namespace obs {

/// Events kept per thread before the ring overwrites the oldest.
inline constexpr size_t kTraceEventCapacity = size_t{1} << 14;

/// True while span events are being recorded to the ring buffers. First
/// call reads the ROTOM_TRACE environment variable.
bool TraceEnabled();

/// Sets (non-empty) or clears (empty) the trace output path, overriding
/// ROTOM_TRACE. While a path is set, spans record events; at process exit
/// the buffered events are written to the path automatically.
void SetTracePath(const std::string& path);

/// The currently configured dump path ("" when tracing is off).
std::string TracePath();

/// Writes every buffered span event as Chrome trace_event JSON to `path`.
/// Returns false on I/O failure. The buffers are left intact.
bool DumpTrace(const std::string& path);

/// Drops all buffered events (tests).
void ClearTrace();

/// Number of buffered events overwritten because a ring wrapped.
uint64_t TraceDroppedEvents();

/// Records a span whose duration was measured by the caller rather than by
/// scope: feeds the `span.<name>.us` histogram and (while tracing) a
/// retrospective ring-buffer event ending now. This is how conditional
/// spans work — e.g. the serving path emits a `serve.slow_request` span
/// only for requests whose measured total latency crossed the slow-request
/// threshold, which a scoped RAII span cannot express. `name` must be a
/// string literal (it outlives the dump).
void EmitCompletedSpan(const char* name, uint64_t duration_us);

namespace internal {
/// Lock-free copy of the trace path for the obs crash handlers (see
/// obs/runlog.h): a signal handler must not take the TraceState mutex that
/// guards TracePath(). Returns a NUL-terminated string, "" when tracing is
/// off; truncated to its fixed capacity for very long paths.
const char* TracePathForCrashHandler();
}  // namespace internal

/// RAII span: records the scope's wall time. Use via ROTOM_TRACE_SPAN;
/// `name` must outlive the dump (string literals only). `hist` receives the
/// duration in microseconds when metrics are enabled.
class TraceSpan {
 public:
  TraceSpan(const char* name, Histogram* hist);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  Histogram* hist_;
  uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace rotom

#define ROTOM_OBS_CONCAT_INNER(a, b) a##b
#define ROTOM_OBS_CONCAT(a, b) ROTOM_OBS_CONCAT_INNER(a, b)

#ifndef ROTOM_METRICS_DISABLED
/// Times the rest of the enclosing scope as phase `name` (a string
/// literal). Every span name used in the repo is cataloged in
/// OBSERVABILITY.md as `span.<name>.us`.
#define ROTOM_TRACE_SPAN(name)                                            \
  static ::rotom::obs::Histogram& ROTOM_OBS_CONCAT(                       \
      rotom_obs_span_hist_, __LINE__) =                                   \
      ::rotom::obs::GetHistogram(std::string("span.") + (name) + ".us");  \
  ::rotom::obs::TraceSpan ROTOM_OBS_CONCAT(rotom_obs_span_, __LINE__)(    \
      (name), &ROTOM_OBS_CONCAT(rotom_obs_span_hist_, __LINE__))
#else
#define ROTOM_TRACE_SPAN(name) static_cast<void>(0)
#endif

#endif  // ROTOM_OBS_TRACE_H_
