// Google-benchmark microbenches for the substrates: tensor math, tokenizer,
// encoding cache, DA operators, encoder forward/backward, and seq2seq
// decoding. These bound the cost of the experiment benches and catch
// performance regressions. Besides the console table, every run is captured
// into BENCH_micro.json (schema: bench_common.h JsonWriter).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "augment/ops.h"
#include "augment/registry.h"
#include "bench_common.h"
#include "models/classifier.h"
#include "models/seq2seq.h"
#include "nn/optim.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"
#include "text/encoding_cache.h"
#include "text/tokenizer.h"
#include "util/thread_pool.h"

namespace {

using namespace rotom;  // NOLINT

// Kernel-layer GEMM throughput at a fixed pool size. range(0) is the square
// matrix extent, range(1) the thread count — the ratio between the
// /threads:1 and /threads:4 rows is the parallel speedup (GFLOP/s is the
// "flops" counter). Numerics are thread-count invariant, so the rows compute
// bit-identical results.
void BM_KernelGemmAB(benchmark::State& state) {
  const int64_t n = state.range(0);
  SetComputeThreads(static_cast<int>(state.range(1)));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    kernels::GemmAB(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n,
      benchmark::Counter::kIsRate);
  SetComputeThreads(0);
}
BENCHMARK(BM_KernelGemmAB)
    ->ArgsProduct({{128, 256, 384}, {1, 2, 4}})
    ->ArgNames({"n", "threads"});

// The attention-score kernel (Q . K^T) on transformer-shaped operands.
void BM_KernelGemmABT(benchmark::State& state) {
  SetComputeThreads(static_cast<int>(state.range(0)));
  constexpr int64_t kBatch = 32, kT = 48, kDh = 16;
  Rng rng(2);
  Tensor q = Tensor::Randn({kBatch, kT, kDh}, rng);
  Tensor k = Tensor::Randn({kBatch, kT, kDh}, rng);
  Tensor scores({kBatch, kT, kT});
  for (auto _ : state) {
    kernels::BatchedGemmABT(q.data(), k.data(), scores.data(), kBatch, kT, kDh,
                            kT, kT * kDh);
    benchmark::DoNotOptimize(scores.data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * kBatch * kT * kT * kDh,
      benchmark::Counter::kIsRate);
  SetComputeThreads(0);
}
BENCHMARK(BM_KernelGemmABT)->Arg(1)->Arg(2)->Arg(4)->ArgName("threads");

// Weight-gradient kernel: batched A^T*B accumulated into one shared output.
void BM_KernelGemmATBShared(benchmark::State& state) {
  SetComputeThreads(static_cast<int>(state.range(0)));
  constexpr int64_t kBatch = 16, kM = 64, kK = 128, kN = 128;
  Rng rng(3);
  Tensor a = Tensor::Randn({kBatch, kM, kK}, rng);
  Tensor b = Tensor::Randn({kBatch, kM, kN}, rng);
  Tensor c({kK, kN});
  for (auto _ : state) {
    kernels::BatchedGemmATB(a.data(), b.data(), c.data(), kBatch, kM, kK, kN,
                            /*c_stride=*/0);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * kBatch * kM * kK * kN,
      benchmark::Counter::kIsRate);
  SetComputeThreads(0);
}
BENCHMARK(BM_KernelGemmATBShared)->Arg(1)->Arg(2)->Arg(4)->ArgName("threads");

void BM_KernelSoftmaxRows(benchmark::State& state) {
  SetComputeThreads(static_cast<int>(state.range(0)));
  constexpr int64_t kRows = 4096, kCols = 128;
  Rng rng(4);
  Tensor x = Tensor::Randn({kRows, kCols}, rng);
  Tensor y({kRows, kCols});
  for (auto _ : state) {
    kernels::SoftmaxRows(x.data(), y.data(), kRows, kCols);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows * kCols);
  SetComputeThreads(0);
}
BENCHMARK(BM_KernelSoftmaxRows)->Arg(1)->Arg(2)->Arg(4)->ArgName("threads");

// Simd-vs-scalar dispatch gain for the f32 GEMM, the acceptance record for
// the ROTOM_SIMD build option. simd:0 runs the serial scalar reference body
// (kernels::scalar), simd:1 the dispatched kernel; both pin the pool to one
// thread so the ratio isolates the ISA gain from thread scaling. The label
// names the flavor the dispatched side compiled to ("avx2"/"neon"/"scalar"
// — on a scalar build the two rows coincide). "flops" is GFLOP/s.
void BM_KernelGemmABFlavor(benchmark::State& state) {
  const int64_t n = state.range(0);
  const bool simd = state.range(1) != 0;
  SetComputeThreads(1);
  state.SetLabel(simd ? kernels::SimdFlavorName() : "scalar");
  Rng rng(8);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    if (simd) {
      kernels::GemmAB(a.data(), b.data(), c.data(), n, n, n);
    } else {
      kernels::scalar::GemmAB(a.data(), b.data(), c.data(), n, n, n);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n,
      benchmark::Counter::kIsRate);
  SetComputeThreads(0);
}
BENCHMARK(BM_KernelGemmABFlavor)
    ->ArgsProduct({{256}, {0, 1}, {1}})
    ->ArgNames({"n", "simd", "threads"});

// The exact int8 GEMM underneath QLinear, scalar reference vs dispatched.
// "flops" counts the same 2*n^3 MACs as the f32 cell above, so the
// int8-vs-f32 gain is this cell's rate over BM_KernelGemmABFlavor's at the
// same n. C is re-zeroed every iteration: the kernel accumulates, and
// letting int32 accumulators grow across iterations would overflow.
void BM_KernelQGemmABT(benchmark::State& state) {
  const int64_t n = state.range(0);
  const bool simd = state.range(1) != 0;
  SetComputeThreads(1);
  state.SetLabel(simd ? kernels::SimdFlavorName() : "scalar");
  Rng rng(9);
  std::vector<int8_t> a(static_cast<size_t>(n * n));
  std::vector<int8_t> b(static_cast<size_t>(n * n));
  for (auto& v : a) v = static_cast<int8_t>(rng.UniformInt(255) - 127);
  for (auto& v : b) v = static_cast<int8_t>(rng.UniformInt(255) - 127);
  std::vector<int32_t> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0);
    if (simd) {
      quant::QGemmABT(a.data(), b.data(), c.data(), n, n, n);
    } else {
      quant::scalar::QGemmABT(a.data(), b.data(), c.data(), n, n, n);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n,
      benchmark::Counter::kIsRate);
  SetComputeThreads(0);
}
BENCHMARK(BM_KernelQGemmABT)
    ->ArgsProduct({{256}, {0, 1}, {1}})
    ->ArgNames({"n", "simd", "threads"});

// End-to-end quantized linear layer (dynamic activation quantization + int8
// GEMM + zero-point-corrected dequantization) against the float equivalent
// at a serving-shaped problem — the honest int8-vs-f32 gain including the
// conversion overheads the raw QGemm cell excludes.
void BM_KernelQLinearVsFloat(benchmark::State& state) {
  const bool int8 = state.range(0) != 0;
  SetComputeThreads(1);
  constexpr int64_t kM = 64, kIn = 256, kOut = 256;
  Rng rng(10);
  Tensor x = Tensor::Randn({kM, kIn}, rng);
  Tensor w = Tensor::Randn({kOut, kIn}, rng);  // [out, in], the stored layout
  Tensor bias = Tensor::Randn({kOut}, rng);
  Tensor y({kM, kOut});
  const quant::QuantizedTensor wq = quant::QuantizeRows(w.data(), kOut, kIn);
  const std::vector<int32_t> w_sums = quant::RowSums(wq);
  for (auto _ : state) {
    if (int8) {
      quant::QLinear(x.data(), wq, w_sums.data(), bias.data(), y.data(), kM);
    } else {
      std::fill_n(y.data(), kM * kOut, 0.0f);  // GemmABT accumulates
      kernels::GemmABT(x.data(), w.data(), y.data(), kM, kIn, kOut);
      kernels::BroadcastAddRows(y.data(), bias.data(), kM, kOut);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * kM * kIn * kOut,
      benchmark::Counter::kIsRate);
  SetComputeThreads(0);
}
BENCHMARK(BM_KernelQLinearVsFloat)
    ->ArgsProduct({{0, 1}, {1}})
    ->ArgNames({"int8", "threads"});

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Variable a(Tensor::Randn({n, n}, rng), false);
  Variable b(Tensor::Randn({n, n}, rng), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b).value().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_BatchedAttentionShapedMatMul(benchmark::State& state) {
  Rng rng(2);
  Variable q(Tensor::Randn({16, 2, 48, 16}, rng), false);
  Variable k(Tensor::Randn({16, 2, 48, 16}, rng), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMulBT(q, k).value().data());
  }
}
BENCHMARK(BM_BatchedAttentionShapedMatMul);

// Row encoding through the training data path's memo. cached:0 is the
// bypass (every call tokenizes + computes overlap flags), cached:1 serves
// repeats from the sharded LRU — the ratio is the per-hit saving the
// pipelined trainers see on re-encoded epochs.
void BM_EncodingCache(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  text::Vocabulary vocab;
  for (int i = 0; i < 100; ++i) vocab.AddToken("tok" + std::to_string(i));
  text::EncodingCache cache(&vocab, /*max_len=*/48,
                            /*capacity_rows=*/cached ? 1024 : 0);
  std::vector<std::string> texts;
  for (int i = 0; i < 64; ++i) {
    std::string t = "[COL] title [VAL]";
    for (int j = 0; j < 12; ++j)
      t += " tok" + std::to_string((i * 7 + j * 13) % 100);
    texts.push_back(std::move(t));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Encode(texts[i++ % texts.size()]).get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodingCache)->Arg(0)->Arg(1)->ArgName("cached");

// Tensor construction cost with the size-class freelist behind it: after the
// first iteration every allocation is a recycled buffer plus a zero-fill.
void BM_TensorAlloc(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    Tensor t({n, n});
    benchmark::DoNotOptimize(t.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TensorAlloc)->Arg(32)->Arg(128)->ArgName("n");

void BM_Tokenize(benchmark::State& state) {
  const std::string input =
      "[COL] title [VAL] efficient query processing in relational databases "
      "[COL] year [VAL] 1999 [SEP] [COL] title [VAL] query processing";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::Tokenize(input));
  }
}
BENCHMARK(BM_Tokenize);

void BM_SimpleDaOp(benchmark::State& state) {
  // Indexes the registry in registration order (0 = token_del, 5 =
  // span_shuffle, 6 = col_shuffle, ...).
  const augment::Operator& op =
      *augment::OperatorRegistry::Global().All()[static_cast<size_t>(
          state.range(0))];
  state.SetLabel(op.name());
  Rng rng(3);
  const auto tokens = text::Tokenize(
      "[COL] title [VAL] efficient query processing in relational databases "
      "[COL] year [VAL] 1999");
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.Apply(tokens, {}, rng));
  }
}
BENCHMARK(BM_SimpleDaOp)->Arg(0)->Arg(5)->Arg(6);

models::ClassifierConfig BenchConfig() {
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 48;
  config.dim = 32;
  config.num_heads = 2;
  config.num_layers = 2;
  config.ffn_dim = 64;
  return config;
}

void BM_ClassifierForward(benchmark::State& state) {
  Rng rng(4);
  auto vocab = std::make_shared<text::Vocabulary>();
  for (int i = 0; i < 100; ++i) vocab->AddToken("tok" + std::to_string(i));
  models::TransformerClassifier model(BenchConfig(), vocab, rng);
  model.SetTraining(false);
  std::vector<std::string> texts(16, "tok1 tok2 tok3 tok4 tok5 tok6 tok7");
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictProbs(texts, rng).data());
  }
}
BENCHMARK(BM_ClassifierForward);

void BM_ClassifierTrainStep(benchmark::State& state) {
  Rng rng(5);
  auto vocab = std::make_shared<text::Vocabulary>();
  for (int i = 0; i < 100; ++i) vocab->AddToken("tok" + std::to_string(i));
  models::TransformerClassifier model(BenchConfig(), vocab, rng);
  nn::Adam optimizer(model.Parameters(), 1e-3f);
  std::vector<std::string> texts(16, "tok1 tok2 tok3 tok4 tok5 tok6 tok7");
  std::vector<int64_t> labels(16, 1);
  // Encoded once, like the pipelined training path (the raw-text overload is
  // deprecated); the bench isolates the forward/backward/step cost.
  const text::EncodedBatch batch =
      text::EncodeBatchForClassifier(model.vocab(), texts, BenchConfig().max_len);
  for (auto _ : state) {
    optimizer.ZeroGrad();
    ops::CrossEntropyMean(model.ForwardLogitsEncoded(batch, rng), labels)
        .Backward();
    optimizer.Step();
  }
}
BENCHMARK(BM_ClassifierTrainStep);

void BM_Seq2SeqDecodeBatch(benchmark::State& state) {
  Rng rng(6);
  auto vocab = std::make_shared<text::Vocabulary>();
  for (int i = 0; i < 100; ++i) vocab->AddToken("tok" + std::to_string(i));
  models::Seq2SeqConfig config;
  config.dim = 32;
  config.num_heads = 2;
  config.num_layers = 2;
  config.ffn_dim = 64;
  config.max_src_len = 24;
  config.max_tgt_len = 24;
  models::Seq2SeqModel model(config, vocab, rng);
  model.SetTraining(false);
  models::SamplingOptions sampling;
  sampling.max_len = 16;
  std::vector<std::string> sources(8, "tok1 tok2 tok3 tok4 tok5");
  Rng gen_rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.GenerateBatch(sources, sampling, gen_rng));
  }
}
BENCHMARK(BM_Seq2SeqDecodeBatch);

// Mirrors every finished run into the shared bench JSON schema while still
// printing the normal console table. "threads" is the pool size encoded in
// the benchmark name when present (the kernel benches sweep it), else the
// process-wide pool size.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const double seconds =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : 0.0;
      writer_.Field("op", name)
          .Field("threads", ThreadsFromName(name))
          .Field("pipeline", false)
          .Field("wall_seconds", seconds)
          .Field("steps_per_sec", seconds > 0.0 ? 1.0 / seconds : 0.0);
      writer_.EndRecord();
    }
  }

  bench::JsonWriter& writer() { return writer_; }

 private:
  static int64_t ThreadsFromName(const std::string& name) {
    const size_t pos = name.find("threads:");
    if (pos == std::string::npos) return ComputeThreads();
    return std::atoll(name.c_str() + pos + sizeof("threads:") - 1);
  }

  bench::JsonWriter writer_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string path = rotom::bench::BenchJsonPath("BENCH_micro.json");
  reporter.writer().CaptureMetrics();
  if (!reporter.writer().WriteFile(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu records to %s\n", reporter.writer().size(),
              path.c_str());
  return 0;
}
