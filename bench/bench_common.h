#ifndef ROTOM_BENCH_BENCH_COMMON_H_
#define ROTOM_BENCH_BENCH_COMMON_H_

// Shared configuration and table-printing helpers for the paper-table
// benches. Each bench binary regenerates one table or figure of the Rotom
// paper (SIGMOD 2021); see DESIGN.md's per-experiment index.
//
// Environment knobs:
//   ROTOM_SEEDS=N   repeats per cell, averaged (default 1; paper uses 5)
//   ROTOM_SMOKE=1   tiny budgets for a fast smoke run

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "eval/experiment.h"
#include "obs/metrics.h"

namespace rotom {
namespace bench {

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atoll(value);
}

inline bool Smoke() { return EnvInt("ROTOM_SMOKE", 0) != 0; }
inline int64_t Seeds() { return std::max<int64_t>(1, EnvInt("ROTOM_SEEDS", 1)); }

/// Classifier/seq2seq scale shared by every experiment (DESIGN.md
/// Substitutions: 2-layer, 32-dim stand-in for the 12-layer LMs).
inline eval::ExperimentOptions BaseExperimentOptions(int64_t max_len,
                                                     int64_t seq_len) {
  eval::ExperimentOptions o;
  o.classifier.max_len = max_len;
  o.classifier.dim = 32;
  o.classifier.num_heads = 2;
  o.classifier.num_layers = 2;
  o.classifier.ffn_dim = 64;
  o.classifier.dropout = 0.1f;
  o.seq2seq.max_src_len = seq_len;
  o.seq2seq.max_tgt_len = seq_len;
  o.seq2seq.dim = 32;
  o.seq2seq.num_heads = 2;
  o.seq2seq.num_layers = 2;
  o.seq2seq.ffn_dim = 64;
  o.pretrain.epochs = 2;
  o.pretrain.max_corpus = 384;
  o.invda.max_corpus = 512;
  o.invda.augments_per_example = 3;
  o.invda.sampling.max_len = seq_len - 2;
  o.batch_size = 16;
  // Bench cost knobs: meta update every 2nd batch, half-size SSL batches
  // (the exact paper loop uses 1 / 1.0; set here to fit the CPU budget).
  o.meta_update_every = 2;
  o.ssl_batch_ratio = 0.5;
  return o;
}

inline eval::ExperimentOptions TextClsExperimentOptions() {
  auto o = BaseExperimentOptions(/*max_len=*/24, /*seq_len=*/24);
  o.invda.epochs = Smoke() ? 1 : 10;
  o.invda.sampling.top_k = 10;
  o.epochs = Smoke() ? 1 : 7;
  return o;
}

inline eval::ExperimentOptions EmExperimentOptions() {
  auto o = BaseExperimentOptions(/*max_len=*/56, /*seq_len=*/32);
  o.same_origin.steps = Smoke() ? 20 : 400;
  o.invda.epochs = Smoke() ? 1 : 12;
  // Records need conservative sampling and light corruption: model codes
  // are near-unpredictable tokens, and aggressive rewrites flip pair labels
  // faster than the filter can learn to drop them.
  o.invda.sampling.top_k = 3;
  o.invda.corruption_ops = 1;
  o.epochs = Smoke() ? 1 : 5;
  return o;
}

inline eval::ExperimentOptions EdtExperimentOptions() {
  auto o = BaseExperimentOptions(/*max_len=*/16, /*seq_len=*/16);
  o.invda.epochs = Smoke() ? 1 : 10;
  o.invda.sampling.top_k = 10;
  o.epochs = Smoke() ? 1 : 6;
  return o;
}

/// Mean test metric and train throughput over ROTOM_SEEDS runs.
struct CellStats {
  double metric = 0.0;
  double train_seconds = 0.0;
  double train_steps = 0.0;
  double steps_per_sec = 0.0;  // aggregate: total steps / total seconds
};

inline CellStats RunMean(eval::TaskContext& context, eval::Method method) {
  CellStats stats;
  const int64_t seeds = Seeds();
  for (int64_t s = 1; s <= seeds; ++s) {
    const auto result = context.Run(method, static_cast<uint64_t>(s));
    stats.metric += result.test_metric;
    stats.train_seconds += result.train_seconds;
    stats.train_steps += static_cast<double>(result.train_steps);
  }
  stats.steps_per_sec =
      stats.train_seconds > 0.0 ? stats.train_steps / stats.train_seconds : 0.0;
  stats.metric /= static_cast<double>(seeds);
  stats.train_seconds /= static_cast<double>(seeds);
  stats.train_steps /= static_cast<double>(seeds);
  return stats;
}

// ---- Machine-readable output (BENCH_*.json) ----

/// Append-only writer for the bench result files. Since schema v2 the file
/// is an object, not a bare array:
///   {"schema": "rotom-bench-v2",
///    "records": [{...}, ...],
///    "metrics": {...}}
/// `records` holds one flat object per measured cell; field order within a
/// record follows the Field() call order and values may be strings, numbers,
/// or booleans. The record schema shared by the bench binaries is
///   {"op": ..., "threads": N, "pipeline": bool,
///    "wall_seconds": S, "steps_per_sec": R}
/// `metrics` is the obs registry snapshot taken by CaptureMetrics() (see
/// OBSERVABILITY.md for the per-metric catalog); it is `null` when the
/// binary never called CaptureMetrics() or metrics are disabled. Downstream
/// tooling can diff runs without parsing the console tables.
class JsonWriter {
 public:
  JsonWriter& Field(const std::string& key, const std::string& value) {
    return Raw(key, "\"" + Escaped(value) + "\"");
  }
  JsonWriter& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  JsonWriter& Field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return Raw(key, buf);
  }
  JsonWriter& Field(const std::string& key, int64_t value) {
    return Raw(key, std::to_string(value));
  }
  JsonWriter& Field(const std::string& key, bool value) {
    return Raw(key, value ? "true" : "false");
  }

  /// Closes the record under construction; the next Field() starts a new one.
  void EndRecord() {
    if (current_.empty()) return;
    records_.push_back("  {" + current_ + "}");
    current_.clear();
  }

  /// Records the current obs metrics snapshot as the file's `metrics`
  /// section (histograms render with interpolated p50/p95/p99, see
  /// obs::HistogramPercentile). Derived ratios that a raw counter dump
  /// cannot express (cache hit rate, buffer-pool reuse rate) are appended
  /// as extra keys. Call once after the measured work, right before
  /// WriteFile().
  void CaptureMetrics() {
    if (!obs::Enabled()) return;  // leave the section null, as documented
    const obs::SnapshotData snapshot = obs::Snapshot();
    std::vector<std::pair<std::string, double>> extras;
    auto value_of = [&](const std::string& name) -> double {
      for (const auto& m : snapshot.metrics) {
        if (m.name == name)
          return m.kind == obs::MetricKind::kGauge
                     ? static_cast<double>(m.gauge)
                     : static_cast<double>(m.count);
      }
      return 0.0;
    };
    auto sum_of = [&](const std::string& name) -> double {
      for (const auto& m : snapshot.metrics) {
        if (m.name == name) return static_cast<double>(m.sum);
      }
      return 0.0;
    };
    const double hits = value_of("encoding_cache.hits");
    const double misses = value_of("encoding_cache.misses");
    if (hits + misses > 0.0)
      extras.emplace_back("encoding_cache.hit_rate", hits / (hits + misses));
    const double reused = value_of("buffer_pool.reused");
    const double allocated = value_of("buffer_pool.allocated");
    if (reused + allocated > 0.0)
      extras.emplace_back("buffer_pool.reuse_rate",
                          reused / (reused + allocated));
    // Serving ratios: fraction of arrivals shed at admission, and the share
    // of end-to-end latency spent waiting in the queue (queue_wait and
    // latency histogram sums are both microseconds over the same requests).
    const double served = value_of("serve.requests");
    const double rejected = value_of("serve.rejected");
    if (served + rejected > 0.0)
      extras.emplace_back("serve.reject_rate", rejected / (served + rejected));
    const double queue_sum = sum_of("serve.queue_wait_us");
    const double latency_sum = sum_of("serve.latency_us");
    if (latency_sum > 0.0)
      extras.emplace_back("serve.queue_wait_share", queue_sum / latency_sum);
    metrics_json_ = obs::SnapshotJson(snapshot, extras);
  }

  /// Writes the accumulated v2 document (closing any open record). Returns
  /// false on I/O failure.
  bool WriteFile(const std::string& path) {
    EndRecord();
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n\"schema\": \"rotom-bench-v2\",\n\"records\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      out << records_[i] << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "],\n\"metrics\": "
        << (metrics_json_.empty() ? "null" : metrics_json_) << "\n}\n";
    out.flush();
    return static_cast<bool>(out);
  }

  size_t size() const { return records_.size() + (current_.empty() ? 0 : 1); }

 private:
  JsonWriter& Raw(const std::string& key, const std::string& rendered) {
    if (!current_.empty()) current_ += ", ";
    current_ += "\"" + Escaped(key) + "\": " + rendered;
    return *this;
  }

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::string current_;
  std::vector<std::string> records_;
  std::string metrics_json_;
};

/// Output path for a bench JSON file: `ROTOM_BENCH_DIR` when set (bench.sh
/// points it at the repo root), else the current directory.
inline std::string BenchJsonPath(const std::string& filename) {
  const char* dir = std::getenv("ROTOM_BENCH_DIR");
  if (dir == nullptr || dir[0] == '\0') return filename;
  std::string out(dir);
  if (out.back() != '/') out += '/';
  return out + filename;
}

// ---- Fixed-width table printing ----

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::fflush(stdout);
}

inline void PrintHeader(const std::string& row_label,
                        const std::vector<std::string>& columns) {
  std::printf("%-22s", row_label.c_str());
  for (const auto& c : columns) std::printf(" %11s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

inline void PrintRow(const std::string& label,
                     const std::vector<double>& values) {
  std::printf("%-22s", label.c_str());
  for (double v : values) {
    if (v != v) {  // NaN marks an intentionally empty cell
      std::printf(" %11s", "-");
    } else {
      std::printf(" %11.2f", v);
    }
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace rotom

#endif  // ROTOM_BENCH_BENCH_COMMON_H_
