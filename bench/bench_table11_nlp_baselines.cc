// Reproduces paper Table 11: Rotom vs two recent NLP data-augmentation
// techniques under their own evaluation protocols:
//   (left)  Hu et al. 2019 — 40 labeled examples per class, 5 per class for
//           validation, on IMDB / SST-5 / TREC; their method learns a DA
//           operator and an example weighting via reinforcement learning.
//   (right) Kumar et al. 2020 — 1% of the training set, on SNIPS / SST-2 /
//           TREC; their method generates label-conditioned augmentations
//           with a pre-trained seq2seq / masked LM, unfiltered.
//
// Expected shape (paper Section 6.5): Rotom beats both family baselines on
// most settings because it (a) uses the more diverse InvDA generator and
// (b) filters/weights the noisy generated examples.

#include <string>
#include <vector>

#include "baselines/nlp_da.h"
#include "bench_common.h"
#include "data/textcls_gen.h"

namespace {

using namespace rotom;        // NOLINT
using namespace rotom::bench; // NOLINT

// Samples k examples per class from a generated pool.
std::vector<data::Example> PerClassSample(const std::vector<data::Example>& pool,
                                          int64_t per_class,
                                          int64_t num_classes, Rng& rng) {
  std::vector<std::vector<data::Example>> buckets(num_classes);
  for (const auto& e : pool) buckets[e.label].push_back(e);
  std::vector<data::Example> out;
  for (auto& bucket : buckets) {
    rng.Shuffle(bucket);
    for (int64_t i = 0; i < per_class && i < static_cast<int64_t>(bucket.size());
         ++i)
      out.push_back(bucket[i]);
  }
  rng.Shuffle(out);
  return out;
}

void RunBlock(const std::string& title,
              const std::vector<std::string>& datasets, bool hu_protocol) {
  PrintTitle(title);
  std::vector<std::string> columns = datasets;
  PrintHeader("method", columns);

  std::vector<std::string> rows = {"Baseline (LM)", "MixDA", "InvDA", "Rotom"};
  std::vector<baselines::NlpBaseline> extra;
  if (hu_protocol) {
    rows.push_back("+Learned DA");
    rows.push_back("+Weighting");
    extra = {baselines::NlpBaseline::kHuLearnedDa,
             baselines::NlpBaseline::kHuWeighting};
  } else {
    rows.push_back("+CG w. BART-style");
    rows.push_back("+CG w. BERT-style");
    extra = {baselines::NlpBaseline::kKumarCondGen,
             baselines::NlpBaseline::kKumarMlmResample};
  }
  std::vector<std::vector<double>> cells(rows.size());

  for (const auto& name : datasets) {
    // Build the protocol-specific sample from a large generated pool.
    data::TextClsOptions pool_options;
    pool_options.train_size = Smoke() ? 200 : 2000;
    pool_options.test_size = Smoke() ? 60 : 250;
    pool_options.unlabeled_size = Smoke() ? 100 : 800;
    pool_options.seed = 3;
    auto ds = data::MakeTextClsDataset(name, pool_options);
    Rng rng(11);
    const int64_t c = ds.num_classes;
    if (hu_protocol) {
      auto pool = ds.train;
      ds.train = PerClassSample(pool, 40, c, rng);
      ds.valid = PerClassSample(pool, 5, c, rng);
    } else {
      // ~1% of a typical training set: 60 examples, 5/class validation.
      auto pool = ds.train;
      ds.train = data::SampleExamples(pool, Smoke() ? 20 : 60, rng);
      ds.valid = PerClassSample(pool, 5, c, rng);
    }

    auto options = TextClsExperimentOptions();
    options.epochs = Smoke() ? 1 : 6;
    eval::TaskContext context(ds, options);
    cells[0].push_back(RunMean(context, eval::Method::kBaseline).metric);
    cells[1].push_back(RunMean(context, eval::Method::kMixDa).metric);
    cells[2].push_back(RunMean(context, eval::Method::kInvDa).metric);
    cells[3].push_back(RunMean(context, eval::Method::kRotom).metric);

    baselines::NlpBaselineOptions nb_options;
    nb_options.epochs = Smoke() ? 1 : 6;
    nb_options.seed = 1;
    for (size_t k = 0; k < extra.size(); ++k) {
      cells[4 + k].push_back(baselines::TrainAndEvalNlpBaseline(
          extra[k], ds, context.options().classifier, context.vocab_ptr(),
          &context.PretrainedState(), nb_options));
    }
    std::fprintf(stderr, "[table11] finished %s\n", name.c_str());
  }

  for (size_t r = 0; r < rows.size(); ++r) PrintRow(rows[r], cells[r]);
}

}  // namespace

int main() {
  RunBlock("Table 11 (left): Hu et al. protocol, 40 labels/class",
           {"imdb", "sst5", "trec"}, /*hu_protocol=*/true);
  RunBlock("Table 11 (right): Kumar et al. protocol, ~1% labels",
           {"snips", "sst2", "trec"}, /*hu_protocol=*/false);
  return 0;
}
