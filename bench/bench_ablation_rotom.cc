// Ablation bench for the design choices DESIGN.md calls out (not a paper
// table, but the paper's Section 4/5 motivates each component):
//   - filtering only / weighting only / both (the two meta models),
//   - the L2 term of Eq. 2 on/off,
//   - sharpen_v1 (temperature) vs sharpen_v2 (pseudo-labeling) vs combined
//     for the SSL extension.
//
// Run on one representative dataset per domain.

#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/rotom_trainer.h"
#include "data/edt_gen.h"
#include "data/textcls_gen.h"

namespace {

using namespace rotom;        // NOLINT
using namespace rotom::bench; // NOLINT

double RunVariant(eval::TaskContext& context, bool filtering, bool weighting,
                  bool l2, bool ssl, double ssl_mix) {
  // Reaches into the core trainer directly to toggle the ablation knobs the
  // TaskContext's stock methods don't expose.
  const auto& ds = context.dataset();
  double mean = 0.0;
  for (int64_t s = 1; s <= Seeds(); ++s) {
    Rng rng(static_cast<uint64_t>(s) * 2654435761ULL + 1);
    auto vocab = context.vocab_ptr();
    auto config = context.options().classifier;
    models::TransformerClassifier model(config, vocab, rng);
    // Start from the shared pre-trained encoder.
    std::map<std::string, const Tensor*> pretrained;
    for (const auto& [name, tensor] : context.PretrainedState()) {
      if (name.rfind("encoder.", 0) == 0) pretrained[name] = &tensor;
    }
    auto full = model.StateDict();
    for (auto& [name, tensor] : full) {
      auto it = pretrained.find(name);
      if (it != pretrained.end()) tensor.CopyFrom(*it->second);
    }
    model.LoadStateDict(full);

    core::RotomOptions options;
    options.epochs = Smoke() ? 1 : context.options().epochs;
    options.batch_size = context.options().batch_size;
    options.use_filtering = filtering;
    options.use_weighting = weighting;
    options.use_l2_term = l2;
    options.use_ssl = ssl;
    options.seed = static_cast<uint64_t>(s);
    // ssl_mix selects the sharpen variant: <0 -> v1 only (threshold > 1
    // disables v2), >1 -> v2 only handled via temperature 1 (identity);
    // 0 -> combined (default alternation).
    if (ssl_mix < 0) options.pseudo_threshold = 2.0;   // v2 never confident
    if (ssl_mix > 0) options.sharpen_temperature = 1.0;  // v1 = identity
    core::RotomTrainer trainer(&model, context.metric(), options);
    trainer.Train(ds, [&context](const std::string& text, Rng& r) {
      std::vector<std::string> out;
      out.push_back(context.RandomSimpleAugment(text, r));
      if (context.InvDaHasCached(text)) {
        out.push_back(context.InvDaSample(text, r));
      }
      return out;
    });
    mean += eval::EvaluateModel(model, ds.test, context.metric());
  }
  return mean / static_cast<double>(Seeds());
}

}  // namespace

int main() {
  struct Task {
    std::string label;
    data::TaskDataset dataset;
    eval::ExperimentOptions options;
  };
  std::vector<Task> tasks;
  {
    data::TextClsOptions d;
    d.train_size = Smoke() ? 40 : 100;
    d.test_size = Smoke() ? 60 : 200;
    d.unlabeled_size = Smoke() ? 100 : 800;
    d.seed = 2;
    tasks.push_back({"trec@100", data::MakeTextClsDataset("trec", d),
                     TextClsExperimentOptions()});
  }
  {
    data::EdtOptions d;
    d.budget = Smoke() ? 40 : 150;
    d.table_rows = Smoke() ? 120 : 400;
    d.seed = 2;
    tasks.push_back({"hospital@150", data::MakeEdtDataset("hospital", d),
                     EdtExperimentOptions()});
  }

  PrintTitle("Ablation: Rotom components");
  PrintHeader("variant", {"trec@100", "hospital@150"});
  struct Variant {
    std::string label;
    bool filtering, weighting, l2, ssl;
    double ssl_mix;  // -1: v1 only, +1: v2 only, 0: combined
  };
  const std::vector<Variant> variants = {
      {"no meta (augs only)", false, false, true, false, 0},
      {"filtering only", true, false, true, false, 0},
      {"weighting only", false, true, true, false, 0},
      {"full Rotom", true, true, true, false, 0},
      {"Rotom, no L2 term", true, true, false, false, 0},
      {"Rotom+SSL (v1+v2)", true, true, true, true, 0},
      {"Rotom+SSL (v1 only)", true, true, true, true, -1},
      {"Rotom+SSL (v2 only)", true, true, true, true, +1},
  };

  std::vector<eval::TaskContext> contexts;
  contexts.reserve(tasks.size());
  for (auto& task : tasks) {
    contexts.emplace_back(std::move(task.dataset), task.options);
    contexts.back().EnsureInvDa();
  }
  for (const auto& v : variants) {
    std::vector<double> row;
    for (auto& context : contexts) {
      row.push_back(RunVariant(context, v.filtering, v.weighting, v.l2,
                               v.ssl, v.ssl_mix));
    }
    PrintRow(v.label, row);
  }
  return 0;
}
