// Reproduces paper Table 9: error-detection F1 on the 5 EDT datasets with at
// most 200 labeled cells, against a Raha-style ensemble detector.
//
// Expected shape (paper Section 6.4): InvDA clearly beats MixDA (simple
// token edits corrupt originally-clean cells), Rotom improves further, and
// Rotom+SSL achieves the best average, beating the Raha-style detector on
// most datasets while using fewer labels.

#include <string>
#include <vector>

#include "baselines/raha_like.h"
#include "bench_common.h"
#include "data/edt_gen.h"

namespace {
using namespace rotom;        // NOLINT
using namespace rotom::bench; // NOLINT
}  // namespace

int main() {
  const int64_t budget = Smoke() ? 40 : EnvInt("ROTOM_T9_BUDGET", 200);

  PrintTitle("Table 9: EDT F1 with " + std::to_string(budget) +
             " labeled cells (paper: <=200)");
  std::vector<std::string> columns = data::EdtDatasetNames();
  columns.push_back("AVG");
  PrintHeader("method", columns);

  const std::vector<std::string> rows = {"Raha-like", "Baseline (LM)",
                                         "MixDA",     "InvDA",
                                         "Rotom",     "Rotom+SSL"};
  std::vector<std::vector<double>> cells(rows.size());

  for (const auto& name : data::EdtDatasetNames()) {
    data::EdtOptions ds_options;
    ds_options.budget = budget;
    ds_options.table_rows = Smoke() ? 120 : 400;
    ds_options.seed = 1;
    auto ds = data::MakeEdtDataset(name, ds_options);

    baselines::RahaLikeDetector raha;
    raha.Fit(ds, /*seed=*/1);
    cells[0].push_back(raha.EvaluateF1(ds));

    eval::TaskContext context(ds, EdtExperimentOptions());
    cells[1].push_back(RunMean(context, eval::Method::kBaseline).metric);
    cells[2].push_back(RunMean(context, eval::Method::kMixDa).metric);
    cells[3].push_back(RunMean(context, eval::Method::kInvDa).metric);
    cells[4].push_back(RunMean(context, eval::Method::kRotom).metric);
    cells[5].push_back(RunMean(context, eval::Method::kRotomSsl).metric);
    std::fprintf(stderr, "[table9] finished %s\n", name.c_str());
  }

  const size_t num_datasets = data::EdtDatasetNames().size();
  for (size_t r = 0; r < rows.size(); ++r) {
    double avg = 0.0;
    for (double v : cells[r]) avg += v;
    cells[r].push_back(avg / static_cast<double>(num_datasets));
    PrintRow(rows[r], cells[r]);
  }
  std::printf(
      "\nNotes: the Raha-like row is a feature-ensemble comparator fit on the\n"
      "same labeled cells; the paper gives Raha 20 labeled tuples instead.\n");
  return 0;
}
