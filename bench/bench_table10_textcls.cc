// Reproduces paper Table 10: accuracy of Rotom on the 8 TextCLS datasets
// with train/valid samples of 100, 300, and 500 examples.
//
// Expected shape (paper Section 6.5): the meta-learned methods give their
// largest gains at size 100 (Rotom/Rotom+SSL several points over the
// baseline on average), with the advantage shrinking as the labeling budget
// grows; MixDA tends to be slightly more useful than InvDA on these tasks.

#include <string>
#include <vector>

#include "bench_common.h"
#include "data/textcls_gen.h"

namespace {
using namespace rotom;        // NOLINT
using namespace rotom::bench; // NOLINT
}  // namespace

int main() {
  const std::vector<int64_t> sizes =
      Smoke() ? std::vector<int64_t>{40} : std::vector<int64_t>{100, 300, 500};
  // Fewer epochs at larger budgets (the paper also trains fewer epochs when
  // more data is available; Section 6.1).
  auto epochs_for = [](int64_t size) {
    if (size <= 100) return static_cast<int64_t>(5);
    if (size <= 300) return static_cast<int64_t>(3);
    return static_cast<int64_t>(2);
  };

  for (int64_t size : sizes) {
    PrintTitle("Table 10: TextCLS accuracy, train/valid size " +
               std::to_string(size));
    std::vector<std::string> columns = data::TextClsDatasetNames();
    columns.push_back("AVG");
    PrintHeader("method", columns);

    std::vector<std::vector<double>> cells(eval::AllMethods().size());
    for (const auto& name : data::TextClsDatasetNames()) {
      data::TextClsOptions ds_options;
      ds_options.train_size = size;
      ds_options.test_size = Smoke() ? 60 : 150;
      ds_options.unlabeled_size = Smoke() ? 100 : 800;
      ds_options.seed = 1;
      auto ds = data::MakeTextClsDataset(name, ds_options);

      auto options = TextClsExperimentOptions();
      options.epochs = Smoke() ? 1 : epochs_for(size);
      eval::TaskContext context(ds, options);
      for (size_t m = 0; m < eval::AllMethods().size(); ++m) {
        cells[m].push_back(
            RunMean(context, eval::AllMethods()[m]).metric);
      }
      std::fprintf(stderr, "[table10] finished %s@%lld\n", name.c_str(),
                   static_cast<long long>(size));
    }

    for (size_t m = 0; m < eval::AllMethods().size(); ++m) {
      double avg = 0.0;
      for (double v : cells[m]) avg += v;
      cells[m].push_back(avg /
                         static_cast<double>(data::TextClsDatasetNames().size()));
      PrintRow(eval::MethodName(eval::AllMethods()[m]), cells[m]);
    }
  }
  return 0;
}
