// Reproduces paper Figure 3: test F1 as a function of the labeling budget,
// for the EM datasets (upper panel; budgets 300-750) and the EDT datasets
// (lower panel; budgets 50-200), with the Raha-like detector as the
// reference line for EDT.
//
// Expected shape (paper Section 6.3/6.4): every curve rises with the budget;
// Rotom or Rotom+SSL give the top curve in most panels, with the largest
// margins at the smallest budgets.
//
// Each dataset uses ONE TaskContext built at the maximum budget; smaller
// budgets train on nested prefixes of the same sample (RunWithBudget), so
// pre-training and the InvDA cache are shared across the sweep.

#include <string>
#include <vector>

#include "baselines/raha_like.h"
#include "bench_common.h"
#include "data/edt_gen.h"
#include "data/em_gen.h"

namespace {
using namespace rotom;        // NOLINT
using namespace rotom::bench; // NOLINT

void PrintSeries(const std::string& dataset, const std::string& method,
                 const std::vector<int64_t>& budgets,
                 const std::vector<double>& values) {
  std::printf("%-16s %-14s", dataset.c_str(), method.c_str());
  for (size_t i = 0; i < budgets.size(); ++i) std::printf(" %7.2f", values[i]);
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main() {
  // ---- Upper panel: EM budgets. ----
  const std::vector<int64_t> em_budgets =
      Smoke() ? std::vector<int64_t>{60} : std::vector<int64_t>{300, 525, 750};
  PrintTitle("Figure 3 (upper): EM F1 vs labeling budget");
  {
    std::printf("%-16s %-14s", "dataset", "method");
    for (int64_t b : em_budgets) std::printf(" %7lld", static_cast<long long>(b));
    std::printf("\n");
  }
  for (const auto& name : data::EmDatasetNames()) {
    data::EmOptions ds_options;
    ds_options.budget = em_budgets.back();
    ds_options.test_size = Smoke() ? 60 : 100;
    ds_options.unlabeled_size = Smoke() ? 100 : 800;
    ds_options.seed = 1;
    auto ds = data::MakeEmDataset(name, ds_options);

    auto options = EmExperimentOptions();
    options.epochs = Smoke() ? 1 : 3;
    // The sweep's cache covers 750 pairs; trim per-example generations to
    // keep the one-time InvDA cost proportionate.
    options.invda.augments_per_example = 2;
    options.invda.epochs = Smoke() ? 1 : 10;
    eval::TaskContext context(ds, options);
    for (auto method : eval::AllMethods()) {
      std::vector<double> series;
      for (int64_t budget : em_budgets) {
        double mean = 0.0;
        for (int64_t s = 1; s <= Seeds(); ++s) {
          mean += context.RunWithBudget(method, s, budget).test_metric;
        }
        series.push_back(mean / static_cast<double>(Seeds()));
      }
      PrintSeries(name, eval::MethodName(method), em_budgets, series);
    }
  }

  // ---- Lower panel: EDT budgets (+ Raha reference line). ----
  const std::vector<int64_t> edt_budgets =
      Smoke() ? std::vector<int64_t>{30} : std::vector<int64_t>{50, 100, 150, 200};
  PrintTitle("Figure 3 (lower): EDT F1 vs labeling budget");
  {
    std::printf("%-16s %-14s", "dataset", "method");
    for (int64_t b : edt_budgets)
      std::printf(" %7lld", static_cast<long long>(b));
    std::printf("\n");
  }
  for (const auto& name : data::EdtDatasetNames()) {
    data::EdtOptions ds_options;
    ds_options.budget = edt_budgets.back();
    ds_options.table_rows = Smoke() ? 120 : 400;
    ds_options.seed = 1;
    auto ds = data::MakeEdtDataset(name, ds_options);

    // Raha-like reference (fit once on the full budget, like the paper's
    // flat 20-tuple Raha line).
    baselines::RahaLikeDetector raha;
    raha.Fit(ds, /*seed=*/1);
    PrintSeries(name, "Raha-like",
                edt_budgets,
                std::vector<double>(edt_budgets.size(), raha.EvaluateF1(ds)));

    auto options = EdtExperimentOptions();
    options.epochs = Smoke() ? 1 : 5;
    eval::TaskContext context(ds, options);
    for (auto method : eval::AllMethods()) {
      std::vector<double> series;
      for (int64_t budget : edt_budgets) {
        double mean = 0.0;
        for (int64_t s = 1; s <= Seeds(); ++s) {
          mean += context.RunWithBudget(method, s, budget).test_metric;
        }
        series.push_back(mean / static_cast<double>(Seeds()));
      }
      PrintSeries(name, eval::MethodName(method), edt_budgets, series);
    }
  }
  return 0;
}
