// F1 vs DA operator-space size (ROADMAP "beyond Table 3"): sweeps the
// registry-resolved operator set from the paper's conservative 3-operator
// core up to 13 operators (the 9 Table-3 ops plus 4 registry plugins), with
// Rotom's filtering model M_F on and off. The paper's thesis (Sections 1
// and 4) is that meta-learned filtering makes *large, noisy* operator
// spaces safe: without filtering, F1 should degrade as low-quality
// operators join the pool; with filtering it should hold or improve.
//
// Each cell fine-tunes on the same shared pre-trained context (vocabulary,
// MLM weights, InvDA cache), so the only variables are
// PipelineOptions::op_set and ExperimentOptions::use_filtering. Results go
// to the console table and BENCH_opspace.json (schema: bench_common.h).

#include <cstdio>
#include <string>
#include <vector>

#include "augment/registry.h"
#include "bench_common.h"
#include "data/em_gen.h"

namespace {

using namespace rotom;         // NOLINT
using namespace rotom::bench;  // NOLINT

struct OpSpace {
  int64_t size;        // number of operators after Resolve()
  std::string spec;    // PipelineOptions::op_set
};

}  // namespace

int main() {
  const int64_t budget = Smoke() ? 120 : EnvInt("ROTOM_OPSPACE_BUDGET", 300);
  const int64_t test_size = Smoke() ? 80 : 200;
  const int64_t unlabeled = Smoke() ? 150 : 1000;

  // Nested operator spaces. 3 = the token-level core; 6 = + span ops;
  // 9 = "default" (exactly paper Table 3); 13 = + four registry plugins
  // from beyond the paper. invda_roundtrip and char_del stay out: the
  // former duplicates the kInvDa candidate source, the latter mostly
  // produces out-of-vocabulary tokens at this vocabulary scale.
  const std::vector<OpSpace> spaces = {
      {3, "token_del,token_repl,token_swap"},
      {6, "token_del,token_repl,token_swap,token_insert,span_del,span_shuffle"},
      {9, "default"},
      {13, "default,attr_swap,attr_shuffle,idf_synonym,num_perturb"},
  };

  data::EmOptions ds_options;
  ds_options.budget = budget;
  ds_options.test_size = test_size;
  ds_options.unlabeled_size = unlabeled;
  ds_options.seed = 1;
  auto ds = data::MakeEmDataset("dblp_acm", ds_options);

  auto options = EmExperimentOptions();
  // The global smoke profile fine-tunes for one epoch, which leaves EM F1
  // pinned at 0 (the model never predicts a positive) and the sweep
  // unreadable. Three epochs still finishes in well under a minute per
  // cell and produces a meaningful curve.
  if (Smoke()) options.epochs = 3;
  eval::TaskContext context(ds, options);

  // Sanity-check the specs against the registry before burning CPU: every
  // space must resolve to the advertised number of operators.
  for (const auto& space : spaces) {
    const auto resolved = augment::OperatorRegistry::Global().Resolve(
        space.spec, ds.is_pair_task, ds.is_record_task);
    if (static_cast<int64_t>(resolved.size()) != space.size) {
      std::fprintf(stderr,
                   "bench_opspace: spec '%s' resolved to %zu ops, want %lld\n",
                   space.spec.c_str(), resolved.size(),
                   static_cast<long long>(space.size));
      return 1;
    }
  }

  PrintTitle("Rotom F1 vs operator-space size (EM dblp_acm, " +
             std::to_string(budget) + " labels)");
  std::vector<std::string> columns;
  for (const auto& space : spaces) {
    columns.push_back(std::to_string(space.size) + " ops");
  }
  PrintHeader("filtering", columns);

  JsonWriter json;
  std::vector<double> with_filter, without_filter;
  for (const bool filtering : {true, false}) {
    context.set_use_filtering(filtering);
    auto& row = filtering ? with_filter : without_filter;
    for (const auto& space : spaces) {
      auto pipeline = context.options().pipeline;
      pipeline.op_set = space.spec;
      context.set_pipeline(pipeline);
      const CellStats stats = RunMean(context, eval::Method::kRotom);
      row.push_back(stats.metric);
      json.Field("op_space_size", space.size)
          .Field("op_set", space.spec)
          .Field("filtering", filtering)
          .Field("f1", stats.metric)
          .Field("train_seconds", stats.train_seconds)
          .Field("steps_per_sec", stats.steps_per_sec);
      json.EndRecord();
      std::fprintf(stderr, "[opspace] %lld ops, filtering=%d: F1 %.2f\n",
                   static_cast<long long>(space.size), filtering ? 1 : 0,
                   stats.metric);
    }
  }
  context.set_use_filtering(true);  // restore the default for clarity

  PrintRow("M_F on", with_filter);
  PrintRow("M_F off", without_filter);

  json.CaptureMetrics();
  const std::string path = BenchJsonPath("BENCH_opspace.json");
  if (!json.WriteFile(path)) {
    std::fprintf(stderr, "bench_opspace: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf(
      "\nNotes: the paper's claim (Sections 1/4) is that meta-learned\n"
      "filtering keeps large noisy operator spaces safe — the M_F-off row\n"
      "should degrade as operators join, the M_F-on row should not.\n"
      "Wrote %s.\n",
      path.c_str());
  return 0;
}
