// Reproduces paper Figure 4: average training time per domain (EM, EDT,
// TextCLS) for the baseline, MixDA/InvDA, Rotom, and Rotom+SSL — and
// additionally measures the pipelined training data path (encoding cache +
// background prefetch) against the serial path. Training results are
// bit-identical between the two configurations (DESIGN.md §8), so the
// steps/sec ratio is a pure data-path speedup.
//
// Expected shape (paper Section 6.6): Rotom costs a single-digit multiple of
// the plain DA methods (paper: 5.6x on average, up to 9.8x) — far below the
// cost of enumerating DA-operator combinations — and Rotom+SSL adds a
// moderate extra factor on top of Rotom.
//
// Machine-readable output: BENCH_figure4.json (see JsonWriter in
// bench_common.h for the schema), one record per domain x method x pipeline
// configuration.

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/edt_gen.h"
#include "data/em_gen.h"
#include "data/textcls_gen.h"
#include "util/thread_pool.h"

namespace {
using namespace rotom;        // NOLINT
using namespace rotom::bench; // NOLINT

struct PipelineConfig {
  const char* label;
  bool on;
  core::PipelineOptions options;
};

std::vector<PipelineConfig> PipelineConfigs() {
  core::PipelineOptions off;
  off.cache_rows = 0;
  off.prefetch = false;
  return {{"pipeline", true, core::PipelineOptions()}, {"serial", false, off}};
}

}  // namespace

int main() {
  const std::vector<PipelineConfig> configs = PipelineConfigs();
  JsonWriter json;
  const int64_t threads = ComputeThreads();

  PrintTitle("Figure 4: training time per run (seconds)");
  PrintHeader("domain[config]", {"Baseline", "MixDA", "InvDA", "Rotom",
                                 "Rotom+SSL", "Rotom/DA"});

  struct Domain {
    std::string label;
    data::TaskDataset dataset;
    eval::ExperimentOptions options;
  };
  std::vector<Domain> domains;

  {
    data::EmOptions d;
    d.budget = Smoke() ? 60 : 200;
    d.test_size = Smoke() ? 60 : 150;
    d.unlabeled_size = Smoke() ? 100 : 800;
    d.seed = 1;
    domains.push_back(
        {"EM", data::MakeEmDataset("dblp_acm", d), EmExperimentOptions()});
  }
  {
    data::EdtOptions d;
    d.budget = Smoke() ? 40 : 150;
    d.table_rows = Smoke() ? 120 : 400;
    d.seed = 1;
    domains.push_back({"EDT", data::MakeEdtDataset("hospital", d),
                       EdtExperimentOptions()});
  }
  {
    data::TextClsOptions d;
    d.train_size = Smoke() ? 40 : 300;
    d.test_size = Smoke() ? 60 : 150;
    d.unlabeled_size = Smoke() ? 100 : 800;
    d.seed = 1;
    domains.push_back({"TextCLS", data::MakeTextClsDataset("trec", d),
                       TextClsExperimentOptions()});
  }

  // steps/sec aggregated over all methods, per domain x config, for the
  // pipeline-speedup summary at the end.
  std::vector<std::vector<double>> domain_steps(domains.size());
  std::vector<std::vector<double>> domain_seconds(domains.size());

  for (size_t di = 0; di < domains.size(); ++di) {
    auto& domain = domains[di];
    // One context per domain: pre-training and the InvDA cache are shared
    // across methods AND pipeline configurations (the data path does not
    // change any trained weights).
    eval::TaskContext context(std::move(domain.dataset), domain.options);
    domain_steps[di].assign(configs.size(), 0.0);
    domain_seconds[di].assign(configs.size(), 0.0);
    for (size_t ci = 0; ci < configs.size(); ++ci) {
      context.set_pipeline(configs[ci].options);
      std::vector<double> times;
      for (auto method : eval::AllMethods()) {
        const CellStats stats = RunMean(context, method);
        times.push_back(stats.train_seconds);
        domain_steps[di][ci] += stats.train_steps;
        domain_seconds[di][ci] += stats.train_seconds;
        json.Field("op",
                   domain.label + "/" + eval::MethodName(method))
            .Field("threads", threads)
            .Field("pipeline", configs[ci].on)
            .Field("wall_seconds", stats.train_seconds)
            .Field("steps_per_sec", stats.steps_per_sec);
        json.EndRecord();
      }
      const double da_time = std::max(times[1], times[2]);
      times.push_back(da_time > 0.0 ? times[3] / da_time : 0.0);
      PrintRow(domain.label + "[" + configs[ci].label + "]", times);
    }
  }

  PrintTitle("Pipeline speedup (steps/sec, all methods pooled)");
  PrintHeader("domain", {"pipeline", "serial", "speedup"});
  for (size_t di = 0; di < domains.size(); ++di) {
    std::vector<double> row;
    for (size_t ci = 0; ci < configs.size(); ++ci) {
      row.push_back(domain_seconds[di][ci] > 0.0
                        ? domain_steps[di][ci] / domain_seconds[di][ci]
                        : 0.0);
    }
    row.push_back(row[1] > 0.0 ? row[0] / row[1] : 0.0);
    PrintRow(domains[di].label, row);
  }

  const std::string path = BenchJsonPath("BENCH_figure4.json");
  json.CaptureMetrics();
  if (!json.WriteFile(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf(
      "\n'Rotom/DA' is Rotom's training time over the slower of MixDA/InvDA\n"
      "(the paper reports 5.6x on average, up to 9.8x; InvDA generation is\n"
      "precomputed and cached, as in the paper's setup).\n"
      "'[pipeline]' rows run with the encoding cache + background prefetch\n"
      "on, '[serial]' rows with both off; losses are bit-identical either\n"
      "way. Wrote %zu records to %s\n",
      json.size(), path.c_str());
  return 0;
}
