// Reproduces paper Figure 4: average training time per domain (EM, EDT,
// TextCLS) for the baseline, MixDA/InvDA, Rotom, and Rotom+SSL.
//
// Expected shape (paper Section 6.6): Rotom costs a single-digit multiple of
// the plain DA methods (paper: 5.6x on average, up to 9.8x) — far below the
// cost of enumerating DA-operator combinations — and Rotom+SSL adds a
// moderate extra factor on top of Rotom.

#include <string>
#include <vector>

#include "bench_common.h"
#include "data/edt_gen.h"
#include "data/em_gen.h"
#include "data/textcls_gen.h"

namespace {
using namespace rotom;        // NOLINT
using namespace rotom::bench; // NOLINT
}  // namespace

int main() {
  PrintTitle("Figure 4: training time per run (seconds)");
  PrintHeader("domain", {"Baseline", "MixDA", "InvDA", "Rotom", "Rotom+SSL",
                         "Rotom/DA"});

  struct Domain {
    std::string label;
    data::TaskDataset dataset;
    eval::ExperimentOptions options;
  };
  std::vector<Domain> domains;

  {
    data::EmOptions d;
    d.budget = Smoke() ? 60 : 200;
    d.test_size = Smoke() ? 60 : 150;
    d.unlabeled_size = Smoke() ? 100 : 800;
    d.seed = 1;
    domains.push_back(
        {"EM", data::MakeEmDataset("dblp_acm", d), EmExperimentOptions()});
  }
  {
    data::EdtOptions d;
    d.budget = Smoke() ? 40 : 150;
    d.table_rows = Smoke() ? 120 : 400;
    d.seed = 1;
    domains.push_back({"EDT", data::MakeEdtDataset("hospital", d),
                       EdtExperimentOptions()});
  }
  {
    data::TextClsOptions d;
    d.train_size = Smoke() ? 40 : 300;
    d.test_size = Smoke() ? 60 : 150;
    d.unlabeled_size = Smoke() ? 100 : 800;
    d.seed = 1;
    domains.push_back({"TextCLS", data::MakeTextClsDataset("trec", d),
                       TextClsExperimentOptions()});
  }

  for (auto& domain : domains) {
    eval::TaskContext context(std::move(domain.dataset), domain.options);
    std::vector<double> times;
    for (auto method : eval::AllMethods()) {
      times.push_back(RunMean(context, method).train_seconds);
    }
    const double da_time = std::max(times[1], times[2]);
    times.push_back(da_time > 0.0 ? times[3] / da_time : 0.0);
    PrintRow(domain.label, times);
  }
  std::printf(
      "\n'Rotom/DA' is Rotom's training time over the slower of MixDA/InvDA\n"
      "(the paper reports 5.6x on average, up to 9.8x; InvDA generation is\n"
      "precomputed and cached, as in the paper's setup).\n");
  return 0;
}
