// Streaming data-path bench (DESIGN.md §14): trains the same tiny
// classifier over a CSV corpus two ways — materialized (load every row,
// epoch loop) and streamed (CsvFileSource -> ShuffleBuffer, step-budgeted)
// — at 1x / 4x / 16x corpus scale, with an equal step budget per scale
// (one materialized epoch's worth of steps). Two claims are measured:
//
//   throughput  streamed steps/sec stays within noise of materialized —
//               the pull-based pipeline + prefetch ring adds no per-step
//               cost;
//   footprint   streamed peak RSS is flat in corpus size (the resident set
//               is the shuffle buffer + encoding cache of the rows actually
//               touched), while materialized grows with every scale.
//
// Each (mode, scale) cell runs in a fresh child process (the binary
// re-execs itself with --scenario) so VmHWM readings are not contaminated
// by a previous cell's allocations; the parent aggregates the RESULT lines
// into the table and BENCH_stream.json.
//
// Machine-readable output: BENCH_stream.json (rotom-bench-v2), one record
// per mode x scale; steps_per_sec is gated by check_bench_regress.sh,
// rss_mb (VmHWM) and rss_delta_mb (VmRSS growth across load+train) ride
// along for the footprint claim.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "core/finetune.h"
#include "data/dataset.h"
#include "data/loader.h"
#include "models/classifier.h"
#include "stream/csv_source.h"
#include "stream/stream.h"
#include "text/vocab.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {
using namespace rotom;         // NOLINT
using namespace rotom::bench;  // NOLINT

constexpr int64_t kBatch = 16;
constexpr int64_t kValidRows = 32;  // fixed-size eval split at every scale

const char* const kNouns[] = {"battery", "screen", "sound", "design", "price"};
const char* const kPos[] = {"great", "fantastic", "excellent", "wonderful"};
const char* const kNeg[] = {"terrible", "boring", "awful", "disappointing"};

std::string MakeRow(Rng& rng, bool positive) {
  const char* const* bank = positive ? kPos : kNeg;
  std::string text = std::string("the ") + kNouns[rng.UniformInt(5)] +
                     " was " + bank[rng.UniformInt(4)] + " and the " +
                     kNouns[rng.UniformInt(5)] + " seemed " +
                     bank[rng.UniformInt(4)];
  return text;
}

void WriteCorpus(const std::string& path, int64_t rows, uint64_t seed) {
  std::ofstream out(path);
  out << "text,label\n";
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    const bool positive = i % 2 == 0;
    out << MakeRow(rng, positive) << ","
        << (positive ? "positive" : "negative") << "\n";
  }
}

// The corpus vocabulary is the generator's word bank — constant across
// scales, so vocabulary construction never shows up in the scaling curves.
std::shared_ptr<text::Vocabulary> BankVocab() {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w : {"the", "was", "and", "seemed"}) vocab->AddToken(w);
  for (const char* w : kNouns) vocab->AddToken(w);
  for (const char* w : kPos) vocab->AddToken(w);
  for (const char* w : kNeg) vocab->AddToken(w);
  return vocab;
}

models::ClassifierConfig BenchConfig() {
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 16;
  config.dim = 32;
  config.num_heads = 2;
  config.num_layers = 2;
  config.ffn_dim = 64;
  config.dropout = 0.1f;
  return config;
}

double StatusKb(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) == 0) {
      double kb = 0.0;
      std::sscanf(line.c_str() + std::strlen(key), ": %lf", &kb);
      return kb;
    }
  }
  return 0.0;
}

// ---- child: one (mode, scale) measurement ----

int RunScenario(const std::string& mode, const std::string& csv,
                int64_t steps) {
  const double rss_before_mb = StatusKb("VmRSS") / 1024.0;

  Rng rng(1);
  auto vocab = BankVocab();
  models::TransformerClassifier model(BenchConfig(), vocab, rng);

  core::FinetuneOptions options;
  options.batch_size = kBatch;
  options.seed = 1;

  data::TaskDataset ds;
  ds.name = "stream-bench";
  ds.num_classes = 2;
  if (mode == "materialized") {
    // Load every row up front (the classic path), train one epoch — the
    // step budget `steps` is exactly ceil(rows / batch).
    auto rows = data::LoadTextClsCsv(csv, "text", "label", nullptr);
    if (!rows.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   rows.status().message().c_str());
      return 1;
    }
    ds.train = std::move(rows).value();
    ds.valid.assign(ds.train.begin(), ds.train.begin() + kValidRows);
    options.epochs = 1;
  } else {
    // Stream the same file; only the shuffle buffer and the touched rows'
    // encodings are ever resident. The eval split is the same fixed-size
    // prefix, pulled through a throwaway source.
    auto labels = std::make_shared<stream::LabelTable>();
    auto head = stream::CsvFileSource::Open(csv, {}, labels);
    if (!head.ok()) return 1;
    for (int64_t i = 0; i < kValidRows; ++i) {
      auto e = head.value()->Next();
      if (!e.ok()) return 1;
      ds.valid.push_back(std::move(e).value());
    }
    auto source = stream::CsvFileSource::Open(csv, {}, labels);
    if (!source.ok()) return 1;
    options.pipeline.streaming.source = std::make_shared<stream::ShuffleBuffer>(
        std::move(source).value(), /*capacity=*/256, /*seed=*/1);
    options.pipeline.streaming.max_steps = steps;
    options.pipeline.streaming.valid_every = steps;  // one final round
  }

  core::FinetuneTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  const auto result =
      trainer.Train(ds, [](const std::string& s, Rng&) { return s; });

  const double rss_after_mb = StatusKb("VmRSS") / 1024.0;
  const double hwm_mb = StatusKb("VmHWM") / 1024.0;
  std::printf("RESULT steps=%" PRId64 " wall=%.6f hwm_mb=%.2f delta_mb=%.2f\n",
              result.steps, result.seconds, hwm_mb,
              rss_after_mb - rss_before_mb);
  return 0;
}

// ---- parent: drive the grid, aggregate, emit the JSON ----

struct Cell {
  int64_t steps = 0;
  double wall = 0.0;
  double hwm_mb = 0.0;
  double delta_mb = 0.0;
};

bool RunChild(const std::string& mode, const std::string& csv, int64_t steps,
              Cell* cell) {
  char self[4096];
  const ssize_t n = readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n <= 0) return false;
  self[n] = '\0';
  std::string command = std::string("\"") + self + "\" --scenario " + mode +
                        " \"" + csv + "\" " + std::to_string(steps);
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return false;
  char line[512];
  bool got = false;
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    if (std::sscanf(line,
                    "RESULT steps=%" SCNd64 " wall=%lf hwm_mb=%lf "
                    "delta_mb=%lf",
                    &cell->steps, &cell->wall, &cell->hwm_mb,
                    &cell->delta_mb) == 4) {
      got = true;
    }
  }
  return pclose(pipe) == 0 && got;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 5 && std::string(argv[1]) == "--scenario") {
    return RunScenario(argv[2], argv[3], std::atoll(argv[4]));
  }

  const int64_t base_rows = Smoke() ? 240 : 2400;
  const std::vector<int64_t> scales = {1, 4, 16};
  const int64_t threads = ComputeThreads();

  char tmpl[] = "/tmp/rotom_bench_stream_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  JsonWriter json;
  PrintTitle("Streaming vs materialized data path");
  PrintHeader("mode@scale", {"rows", "steps", "steps/sec", "peakRSS MB",
                             "dRSS MB"});

  double streamed_hwm_1x = 0.0, streamed_hwm_16x = 0.0;
  bool all_ok = true;
  for (int64_t scale : scales) {
    const int64_t rows = base_rows * scale;
    const std::string csv =
        std::string(dir) + "/corpus_" + std::to_string(scale) + "x.csv";
    WriteCorpus(csv, rows, /*seed=*/7);
    // Equal step budget for both modes: one materialized epoch's worth.
    const int64_t steps = (rows + kBatch - 1) / kBatch;
    for (const char* mode : {"materialized", "streamed"}) {
      Cell cell;
      if (!RunChild(mode, csv, steps, &cell)) {
        std::fprintf(stderr, "scenario %s@%" PRId64 "x failed\n", mode, scale);
        all_ok = false;
        continue;
      }
      const double rate = cell.wall > 0.0 ? cell.steps / cell.wall : 0.0;
      PrintRow(std::string(mode) + "@" + std::to_string(scale) + "x",
               {static_cast<double>(rows), static_cast<double>(cell.steps),
                rate, cell.hwm_mb, cell.delta_mb});
      json.Field("op", std::string("Stream/") + mode + "@" +
                           std::to_string(scale) + "x")
          .Field("threads", threads)
          .Field("pipeline", true)
          .Field("wall_seconds", cell.wall)
          .Field("steps_per_sec", rate)
          .Field("rss_mb", cell.hwm_mb)
          .Field("rss_delta_mb", cell.delta_mb);
      json.EndRecord();
      if (std::string(mode) == "streamed") {
        if (scale == 1) streamed_hwm_1x = cell.hwm_mb;
        if (scale == 16) streamed_hwm_16x = cell.hwm_mb;
      }
      std::remove((csv + ".runlog").c_str());
    }
    std::remove(csv.c_str());
  }
  rmdir(dir);

  const std::string path = BenchJsonPath("BENCH_stream.json");
  if (!json.WriteFile(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  if (streamed_hwm_1x > 0.0) {
    std::printf(
        "\nstreamed peak RSS at 16x is %.2fx the 1x footprint "
        "(flat-footprint target: <= 1.2x)\n",
        streamed_hwm_16x / streamed_hwm_1x);
  }
  std::printf(
      "Equal step budget per scale (one materialized epoch); each cell runs\n"
      "in a fresh child process so VmHWM readings are independent. Wrote %zu\n"
      "records to %s\n",
      json.size(), path.c_str());
  return all_ok ? 0 : 1;
}
