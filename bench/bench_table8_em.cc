// Reproduces paper Table 8: F1 scores on the 5 EM datasets (clean + dirty
// variants) in the low-resource setting, comparing DeepMatcher (trained on a
// large "full" sample), DM with pre-trained embeddings, the fine-tuned LM
// baseline, the Brunner et al. serialization variant, MixDA, InvDA, Rotom,
// and Rotom+SSL.
//
// Expected shape (paper Section 6.3): Rotom+SSL best on average and
// competitive with full-data DeepMatcher while using a fraction of the
// labels; InvDA strongest on the textual datasets (Abt-Buy, Walmart-Amazon);
// DBLP-ACM near-saturated for every LM method; DM+LM and Brunner close to
// the LM baseline.

#include <cmath>
#include <string>
#include <vector>

#include "baselines/deepmatcher.h"
#include "bench_common.h"
#include "data/em_gen.h"

namespace {

using namespace rotom;        // NOLINT
using namespace rotom::bench; // NOLINT

struct Variant {
  std::string dataset;
  bool dirty;
  std::string label;
};

}  // namespace

int main() {
  const int64_t budget = Smoke() ? 60 : EnvInt("ROTOM_T8_BUDGET", 300);
  const int64_t test_size = Smoke() ? 60 : 200;
  const int64_t unlabeled = Smoke() ? 100 : 1000;

  std::vector<Variant> variants;
  for (const auto& name : data::EmDatasetNames()) {
    variants.push_back({name, false, name});
    if (data::EmHasDirtyVariant(name) && !Smoke()) {
      variants.push_back({name, true, name + "/dirty"});
    }
  }

  PrintTitle("Table 8: EM F1 with " + std::to_string(budget) +
             " train+valid labels (paper: <=750)");
  std::vector<std::string> columns;
  for (const auto& v : variants) columns.push_back(v.label);
  columns.push_back("AVG");
  PrintHeader("method", columns);

  const std::vector<std::string> rows = {
      "DM (full)", "DM+LM",  "Baseline (LM)", "Brunner et al.",
      "MixDA",     "InvDA",  "Rotom",         "Rotom+SSL"};
  std::vector<std::vector<double>> cells(rows.size());

  for (const auto& variant : variants) {
    data::EmOptions ds_options;
    ds_options.budget = budget;
    ds_options.test_size = test_size;
    ds_options.unlabeled_size = unlabeled;
    ds_options.dirty = variant.dirty;
    ds_options.seed = 1;
    auto ds = data::MakeEmDataset(variant.dataset, ds_options);

    auto options = EmExperimentOptions();
    eval::TaskContext context(ds, options);

    // DM trained on a large sample stands in for the paper's full-data
    // DeepMatcher row (their numbers are from the complete datasets).
    {
      data::EmOptions full = ds_options;
      full.budget = Smoke() ? 120 : 3000;
      auto full_ds = data::MakeEmDataset(variant.dataset, full);
      cells[0].push_back(
          baselines::TrainAndEvalDeepMatcher(full_ds, /*seed=*/1));
    }
    // DM+LM: the comparison net initialized with the MLM-pretrained token
    // embeddings (the paper's DM+RoBERTa analogue).
    {
      Tensor token_emb;
      for (const auto& [name, tensor] : context.PretrainedState()) {
        if (name == "encoder.token_emb.weight") token_emb = tensor;
      }
      cells[1].push_back(baselines::TrainAndEvalDeepMatcherWithEmbeddings(
          ds, context.vocab_ptr(), token_emb, /*seed=*/1));
    }

    cells[2].push_back(RunMean(context, eval::Method::kBaseline).metric);

    // Brunner et al.: same LM fine-tuning over marker-free serialization.
    {
      auto brunner_ds = baselines::BrunnerVariant(ds);
      eval::TaskContext brunner_context(brunner_ds, options);
      cells[3].push_back(
          RunMean(brunner_context, eval::Method::kBaseline).metric);
    }

    cells[4].push_back(RunMean(context, eval::Method::kMixDa).metric);
    cells[5].push_back(RunMean(context, eval::Method::kInvDa).metric);
    cells[6].push_back(RunMean(context, eval::Method::kRotom).metric);
    cells[7].push_back(RunMean(context, eval::Method::kRotomSsl).metric);
    std::fprintf(stderr, "[table8] finished %s\n", variant.label.c_str());
  }

  for (size_t r = 0; r < rows.size(); ++r) {
    double avg = 0.0;
    for (double v : cells[r]) avg += v;
    cells[r].push_back(avg / static_cast<double>(variants.size()));
    PrintRow(rows[r], cells[r]);
  }
  std::printf(
      "\nNotes: budgets/test sizes scaled for CPU; the paper's Table 8 uses\n"
      "the original benchmark datasets and 5-run averages (ROTOM_SEEDS).\n");
  return 0;
}
