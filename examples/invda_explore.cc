// InvDA under the hood (paper Section 3, Tables 4 and 5).
//
// Trains the inverse-data-augmentation seq2seq model on an unlabeled corpus
// and prints example augmentations next to simple-operator augmentations,
// reproducing the qualitative comparison of the paper's Tables 4/5.
//
// Run:  ./example_invda_explore

#include <cstdio>

#include "augment/ops.h"
#include "augment/registry.h"
#include "data/em_gen.h"
#include "data/textcls_gen.h"
#include "eval/experiment.h"
#include "invda/invda.h"

using namespace rotom;  // NOLINT: example brevity

namespace {

void Explore(const char* title, const data::TaskDataset& dataset,
             int64_t max_len, int num_examples) {
  std::printf("=== %s ===\n", title);
  auto vocab = eval::BuildTaskVocabulary(dataset);

  std::vector<std::vector<std::string>> docs;
  for (const auto& t : dataset.unlabeled) docs.push_back(text::Tokenize(t));
  const text::IdfTable idf = text::IdfTable::Build(docs);
  augment::AugmentContext context;
  context.idf = &idf;
  context.synonyms = &augment::SynonymLexicon::Default();

  // Algorithm 1: corrupt unlabeled sequences, train seq2seq to restore.
  models::Seq2SeqConfig config;
  config.dim = 32;
  config.num_layers = 2;
  config.ffn_dim = 64;
  config.max_src_len = max_len;
  config.max_tgt_len = max_len;
  invda::InvDa generator(config, vocab, context, dataset.is_pair_task,
                         dataset.is_record_task, /*seed=*/11);
  invda::InvDaOptions options;
  options.epochs = 10;
  options.max_corpus = 512;
  options.sampling.top_k = 10;
  options.sampling.max_len = max_len - 2;
  const float loss = generator.Train(dataset.unlabeled, options);
  std::printf("InvDA trained (reconstruction loss %.2f)\n\n", loss);

  Rng rng(3);
  const auto ops = augment::OperatorRegistry::Global().DefaultOps(
      dataset.is_pair_task, dataset.is_record_task);
  for (int i = 0; i < num_examples; ++i) {
    const std::string& original = dataset.train[i].text;
    std::printf("original: %s\n", original.c_str());
    for (int k = 0; k < 2; ++k) {
      const augment::Operator& op =
          *ops[rng.UniformInt(static_cast<int64_t>(ops.size()))];
      std::printf("  DA%d (%s): %s\n", k + 1, op.name(),
                  augment::AugmentText(original, op, context, rng).c_str());
    }
    int k = 0;
    for (const auto& aug : generator.Augment(original, 3)) {
      std::printf("  InvDA%d: %s\n", ++k, aug.c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  data::TextClsOptions text_options;
  text_options.train_size = 50;
  text_options.unlabeled_size = 1000;
  text_options.seed = 2;
  Explore("Text classification (question intent)",
          data::MakeTextClsDataset("trec", text_options), 24, 3);

  data::EmOptions em_options;
  em_options.budget = 50;
  em_options.test_size = 50;
  em_options.unlabeled_size = 800;
  em_options.seed = 2;
  // For EM, InvDA works at single-record granularity (the shape of the
  // paper's Table 5 examples): split the unlabeled pairs into records.
  data::TaskDataset em = data::MakeEmDataset("dblp_acm", em_options);
  data::TaskDataset records;
  records.name = em.name + "_records";
  records.is_record_task = true;
  auto split = [&](const std::string& pair) {
    const size_t sep = pair.find(" [SEP] ");
    records.unlabeled.push_back(pair.substr(0, sep));
    if (sep != std::string::npos) records.unlabeled.push_back(pair.substr(sep + 7));
  };
  for (const auto& t : em.unlabeled) split(t);
  for (const auto& e : em.train) {
    const size_t sep = e.text.find(" [SEP] ");
    records.train.push_back({e.text.substr(0, sep), e.label});
  }
  Explore("Entity matching (paper records, Table 5)", records, 32, 2);
  return 0;
}
