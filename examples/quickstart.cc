// Quickstart: train a low-resource text classifier with Rotom, export it,
// and serve it — the full lifecycle through the stable rotom::api facade.
//
//   1. build a task dataset (synthetic TREC-style stand-in),
//   2. api::Train — vocabulary, masked-LM pre-training, InvDA, and the
//      meta-learned filtering+weighting loop, in one call,
//   3. Snapshot::Save — a single-file export of the fine-tuned model,
//   4. InferenceSession::Open — load it back, read-only,
//   5. BatchingServer — answer queries with micro-batched forwards,
//   6. ModelRegistry + TenantServer — publish the snapshot as a named,
//      versioned model, then quantize it to int8 and hot-swap the new
//      version in while the server keeps answering.
//
// Run:  ./example_quickstart

#include <cstdio>

#include "data/textcls_gen.h"
#include "rotom/api.h"

using namespace rotom;  // NOLINT: example brevity

int main() {
  // 1. A low-resource task: 100 labeled questions, 6 intent classes.
  data::TextClsOptions data_options;
  data_options.train_size = 100;
  data_options.test_size = 300;
  data_options.unlabeled_size = 1000;
  data_options.seed = 7;
  data::TaskDataset dataset = data::MakeTextClsDataset("trec", data_options);
  std::printf("dataset: %s  train=%zu  test=%zu  unlabeled=%zu  classes=%lld\n",
              dataset.name.c_str(), dataset.train.size(), dataset.test.size(),
              dataset.unlabeled.size(),
              static_cast<long long>(dataset.num_classes));

  // 2. One TrainSpec describes the whole run; the options default to the
  // paper's configuration and only the scaled-down sizes are set here. The
  // data input is a DataSource — Inline wraps an in-memory dataset; File /
  // Mixture / Stream point at CSVs (see examples/custom_csv.cc and
  // examples/em_matching.cc).
  api::TrainSpec spec;
  spec.source = data::DataSource::Inline(dataset);
  spec.method = eval::Method::kRotom;
  spec.seed = 1;
  spec.options.classifier.max_len = 24;
  spec.options.classifier.dim = 32;
  spec.options.classifier.num_layers = 2;
  spec.options.classifier.ffn_dim = 64;
  spec.options.seq2seq.max_src_len = 24;
  spec.options.seq2seq.max_tgt_len = 24;
  spec.options.seq2seq.dim = 32;
  spec.options.seq2seq.ffn_dim = 64;
  spec.options.invda.epochs = 10;
  spec.options.invda.max_corpus = 512;
  spec.options.invda.sampling.top_k = 10;
  spec.options.invda.sampling.max_len = 22;
  spec.options.epochs = 10;

  std::printf("training with %s (pre-training + InvDA + meta-learning)...\n",
              eval::MethodName(spec.method));
  auto report = api::Train(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().message().c_str());
    return 1;
  }
  std::printf("%-10s  test accuracy %.2f%%  (train %.1fs)\n",
              eval::MethodName(spec.method), report.value().metrics.test_metric,
              report.value().metrics.train_seconds);

  // 3. Export: everything inference needs (weights, config, vocabulary, IDF
  // table) in one checksummed file.
  const std::string path = "quickstart_model.rsnap";
  if (auto s = report.value().snapshot.Save(path); !s.ok()) {
    std::fprintf(stderr, "snapshot save failed: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("saved snapshot to %s\n", path.c_str());

  // 4-5. Load it back read-only and serve through the micro-batching front
  // end. A real deployment points many client threads at `server`; each
  // Submit() returns a future and the worker fuses waiting requests into one
  // forward.
  auto session = api::InferenceSession::Open(path);
  if (!session.ok()) {
    std::fprintf(stderr, "open failed: %s\n", session.status().message().c_str());
    return 1;
  }
  api::BatchingServer server(session.value().get());
  int correct = 0;
  const size_t shown = 3;
  for (size_t i = 0; i < dataset.test.size(); ++i) {
    auto prediction = server.Predict(dataset.test[i].text);
    if (!prediction.ok()) continue;
    correct += prediction.value().label == dataset.test[i].label;
    if (i < shown) {
      std::printf("  \"%s\" -> class %lld (p=%.2f)\n",
                  dataset.test[i].text.c_str(),
                  static_cast<long long>(prediction.value().label),
                  prediction.value().probs[static_cast<size_t>(
                      prediction.value().label)]);
    }
  }
  std::printf("served %zu queries, accuracy %.2f%%\n", dataset.test.size(),
              100.0 * correct / static_cast<double>(dataset.test.size()));

  // 6. The registry tier (DESIGN.md §13): the same snapshot file published
  // as version 1 of a named model — Publish(path) mmaps it, no staging
  // copy — then quantized to int8 (DESIGN.md §12) and published as version
  // 2. Swap redirects new batches to v2 without disturbing batches already
  // running on v1; Retire then drops the store's reference to v1.
  api::ModelRegistry registry;
  auto v1 = registry.Publish("quickstart", path);
  if (!v1.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 v1.status().message().c_str());
    return 1;
  }
  api::TenantServer tenants(&registry, {"quickstart"});
  auto before = tenants.Predict("quickstart", dataset.test[0].text);

  auto quantized = api::QuantizeSnapshot(report.value().snapshot);
  auto v2 = registry.Publish("quickstart", quantized.value());
  registry.Swap("quickstart", v2.value());      // hot swap: f32 -> int8
  auto after = tenants.Predict("quickstart", dataset.test[0].text);
  registry.Retire("quickstart", v1.value());
  std::printf(
      "registry: served v%llu then hot-swapped to v%llu (int8); "
      "labels %lld / %lld\n",
      static_cast<unsigned long long>(v1.value()),
      static_cast<unsigned long long>(v2.value()),
      static_cast<long long>(before.value().label),
      static_cast<long long>(after.value().label));
  tenants.Shutdown();

  std::printf(
      "\nRotom combines simple DA operators with InvDA and learns to filter\n"
      "and weight the augmented examples; with 100 labels it should beat\n"
      "plain fine-tuning (spec.method = eval::Method::kBaseline) by several\n"
      "accuracy points, and the snapshot serves the same logits the trainer\n"
      "measured, bit for bit.\n");
  return 0;
}
