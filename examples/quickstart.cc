// Quickstart: train a low-resource text classifier with Rotom.
//
// This walks the full pipeline on a 100-example intent-classification task:
//   1. build a task dataset (synthetic TREC-style stand-in),
//   2. build the vocabulary and pre-train the small LM on unlabeled text,
//   3. train the InvDA seq2seq augmenter (Algorithm 1),
//   4. meta-train the classifier with Rotom (Algorithm 2),
//   5. compare against plain fine-tuning on the same data.
//
// Run:  ./example_quickstart

#include <cstdio>

#include "data/textcls_gen.h"
#include "eval/experiment.h"

using namespace rotom;  // NOLINT: example brevity

int main() {
  // 1. A low-resource task: 100 labeled questions, 6 intent classes.
  data::TextClsOptions data_options;
  data_options.train_size = 100;
  data_options.test_size = 300;
  data_options.unlabeled_size = 1000;
  data_options.seed = 7;
  data::TaskDataset dataset = data::MakeTextClsDataset("trec", data_options);
  std::printf("dataset: %s  train=%zu  test=%zu  unlabeled=%zu  classes=%lld\n",
              dataset.name.c_str(), dataset.train.size(), dataset.test.size(),
              dataset.unlabeled.size(),
              static_cast<long long>(dataset.num_classes));

  // 2-3. TaskContext bundles vocabulary, IDF weighting, masked-LM
  // pre-training, and the InvDA generator; everything is cached and shared
  // across the method runs below.
  eval::ExperimentOptions options;
  options.classifier.max_len = 24;
  options.classifier.dim = 32;
  options.classifier.num_layers = 2;
  options.classifier.ffn_dim = 64;
  options.seq2seq.max_src_len = 24;
  options.seq2seq.max_tgt_len = 24;
  options.seq2seq.dim = 32;
  options.seq2seq.ffn_dim = 64;
  options.invda.epochs = 10;
  options.invda.max_corpus = 512;
  options.invda.sampling.top_k = 10;
  options.invda.sampling.max_len = 22;
  options.epochs = 10;
  eval::TaskContext context(dataset, options);
  std::printf("preparing pre-trained LM and InvDA (one-time)...\n");
  context.EnsureInvDa();

  // 4-5. Plain fine-tuning vs the full meta-learned framework.
  for (auto method : {eval::Method::kBaseline, eval::Method::kRotom,
                      eval::Method::kRotomSsl}) {
    eval::ExperimentResult result = context.Run(method, /*seed=*/1);
    std::printf("%-10s  test accuracy %.2f%%  (train %.1fs)\n",
                eval::MethodName(method), result.test_metric,
                result.train_seconds);
  }
  std::printf(
      "\nRotom combines simple DA operators with InvDA and learns to filter\n"
      "and weight the augmented examples; with 100 labels it should beat\n"
      "plain fine-tuning by several accuracy points.\n");
  return 0;
}
