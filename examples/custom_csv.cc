// Bringing your own data: load a CSV dataset, assemble a TaskDataset, and
// train with Rotom — the adoption path for the library outside the paper's
// benchmarks. This example writes a small CSV to a temp directory first so
// it is self-contained; point the loader at your files instead.
//
// Run:  ./example_custom_csv

#include <cstdio>
#include <fstream>

#include "rotom.h"

using namespace rotom;  // NOLINT: example brevity

int main() {
  // 1. A stand-in for "your" CSV file: product reviews with string labels.
  const std::string path = "/tmp/rotom_example_reviews.csv";
  {
    std::ofstream out(path);
    out << "review,sentiment\n";
    Rng rng(7);
    const char* pos[] = {"great", "fantastic", "excellent", "wonderful"};
    const char* neg[] = {"terrible", "boring", "awful", "disappointing"};
    const char* nouns[] = {"battery", "screen", "sound", "design", "price"};
    for (int i = 0; i < 400; ++i) {
      const bool positive = i % 2 == 0;
      const char* const* bank = positive ? pos : neg;
      out << "the " << nouns[rng.UniformInt(5)] << " was "
          << bank[rng.UniformInt(4)] << " and the " << nouns[rng.UniformInt(5)]
          << " seemed " << bank[rng.UniformInt(4)] << ","
          << (positive ? "positive" : "negative") << "\n";
    }
  }

  // 2. Load and split through the unified source factory: 80 labels for
  //    training, 150 for test, the rest becomes the unlabeled pool for
  //    InvDA and Rotom+SSL. The same DataSource plugs directly into
  //    api::TrainSpec::source; OpenSource is the lower-level entry when you
  //    want the TaskDataset itself (as here, to share one TaskContext
  //    across methods).
  data::DataSource::FileSpec file;
  file.path = path;
  file.text_column = "review";
  file.label_column = "sentiment";
  data::DataSource::SplitSpec split;
  split.train_size = 80;
  split.test_size = 150;
  split.seed = 1;
  split.name = "my-reviews";
  auto opened = data::OpenSource(data::DataSource::File(file, split));
  if (!opened.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 opened.status().message().c_str());
    return 1;
  }
  data::TaskDataset ds = std::move(opened.value().dataset);
  std::printf("loaded %s: train=%zu test=%zu unlabeled=%zu classes:",
              ds.name.c_str(), ds.train.size(), ds.test.size(),
              ds.unlabeled.size());
  for (const auto& l : opened.value().label_names)
    std::printf(" %s", l.c_str());
  std::printf("\n");

  // 3. Train baseline vs Rotom through the shared harness.
  eval::ExperimentOptions options;
  options.classifier.max_len = 20;
  options.classifier.dim = 32;
  options.classifier.num_layers = 2;
  options.classifier.ffn_dim = 64;
  options.seq2seq.max_src_len = 20;
  options.seq2seq.max_tgt_len = 20;
  options.seq2seq.dim = 32;
  options.seq2seq.ffn_dim = 64;
  options.invda.epochs = 8;
  options.invda.sampling.top_k = 10;
  options.invda.sampling.max_len = 18;
  options.epochs = 8;
  eval::TaskContext context(ds, options);
  for (auto method : {eval::Method::kBaseline, eval::Method::kRotom}) {
    auto result = context.Run(method, /*seed=*/1);
    std::printf("%-10s test accuracy %.2f%% (train %.1fs)\n",
                eval::MethodName(method), result.test_metric,
                result.train_seconds);
  }
  return 0;
}
