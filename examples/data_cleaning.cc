// Error detection (data cleaning) with Rotom vs a Raha-style ensemble
// (paper Sections 2.1 and 6.4).
//
// Casts cell-level error detection as sequence classification over
// "[COL] attr [VAL] value" inputs, trains Rotom with 100 labeled cells, and
// compares against the Raha-like feature-ensemble detector.
//
// Run:  ./example_data_cleaning

#include <cstdio>

#include "baselines/raha_like.h"
#include "data/edt_gen.h"
#include "eval/experiment.h"

using namespace rotom;  // NOLINT: example brevity

int main() {
  data::EdtOptions edt_options;
  edt_options.budget = 100;  // 100 labeled cells, balanced clean/dirty
  edt_options.seed = 5;
  data::TaskDataset dataset = data::MakeEdtDataset("hospital", edt_options);
  std::printf("dataset: %s  train=%zu cells  test=%zu cells (%.0f%% dirty)\n",
              dataset.name.c_str(), dataset.train.size(), dataset.test.size(),
              100.0 * data::LabelFraction(dataset.test, 1));
  for (int i = 0; i < 4; ++i) {
    std::printf("  %s cell: %s\n",
                dataset.train[i].label == 1 ? "dirty" : "clean",
                dataset.train[i].text.c_str());
  }
  std::printf("\n");

  // The non-LM comparator: column-profile features + logistic vote.
  baselines::RahaLikeDetector raha;
  raha.Fit(dataset, /*seed=*/1);
  std::printf("Raha-like ensemble:    F1 %.2f%%\n", raha.EvaluateF1(dataset));

  // Rotom through the shared experiment harness (pre-training + InvDA are
  // handled by the TaskContext).
  eval::ExperimentOptions options;
  options.classifier.max_len = 16;
  options.classifier.dim = 32;
  options.classifier.num_layers = 2;
  options.classifier.ffn_dim = 64;
  options.seq2seq.max_src_len = 16;
  options.seq2seq.max_tgt_len = 16;
  options.seq2seq.dim = 32;
  options.seq2seq.ffn_dim = 64;
  options.invda.epochs = 10;
  options.invda.max_corpus = 512;
  options.invda.sampling.top_k = 10;
  options.invda.sampling.max_len = 14;
  options.epochs = 10;
  eval::TaskContext context(dataset, options);
  for (auto method : {eval::Method::kBaseline, eval::Method::kInvDa,
                      eval::Method::kRotom, eval::Method::kRotomSsl}) {
    auto result = context.Run(method, /*seed=*/1);
    std::printf("%-22s F1 %.2f%%  (train %.1fs)\n", eval::MethodName(method),
                result.test_metric, result.train_seconds);
  }
  std::printf(
      "\nThe hospital table's systematic 'x'-typos are hard to pin down from\n"
      "100 raw labels but easy once InvDA + meta-learned selection amplify\n"
      "the signal — the paper's Table 9 shows the same 54 -> 100 F1 jump.\n");
  return 0;
}
