// Entity matching with Rotom (paper Sections 2.1 and 6.3).
//
// Shows the lower-level API: serializing entity records into the
// "[COL] attr [VAL] value ... [SEP] ..." format, building a classifier, and
// training it with the Rotom meta-trainer using simple DA operators.
//
// Run:  ./example_em_matching

#include <cstdio>

#include "augment/ops.h"
#include "core/rotom_trainer.h"
#include "data/em_gen.h"
#include "eval/experiment.h"
#include "text/records.h"

using namespace rotom;  // NOLINT: example brevity

int main() {
  // Serialization demo, straight from the paper's Section 2.1 example.
  text::Record google;
  google.fields = {{"Name", "Google LLC"}, {"phone", "(866) 246-6453"}};
  text::Record alphabet;
  alphabet.fields = {{"Name", "Alphabet inc"}, {"phone", "6502530000"}};
  std::printf("serialized pair:\n  %s\n\n",
              text::SerializeEntityPair(google, alphabet).c_str());

  // A low-resource EM task: 300 labeled pairs of the Abt-Buy stand-in.
  data::EmOptions em_options;
  em_options.budget = 300;
  em_options.test_size = 300;
  em_options.unlabeled_size = 800;
  em_options.seed = 3;
  data::TaskDataset dataset = data::MakeEmDataset("abt_buy", em_options);
  std::printf("dataset: %s  train=%zu (%.0f%% positive)  test=%zu\n",
              dataset.name.c_str(), dataset.train.size(),
              100.0 * data::LabelFraction(dataset.train, 1),
              dataset.test.size());
  std::printf("example pair:\n  %s\n\n", dataset.train[0].text.c_str());

  // Build the model by hand (instead of through TaskContext) to show the
  // pieces: vocabulary -> classifier -> Rotom trainer with DA operators.
  auto vocab = eval::BuildTaskVocabulary(dataset);
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 56;
  config.dim = 32;
  config.num_layers = 2;
  config.ffn_dim = 64;
  Rng rng(1);
  models::TransformerClassifier model(config, vocab, rng);

  // "Pre-trained LM" stand-in: masked-LM self-training on the unlabeled
  // pairs plus the same-origin comparison stage (DESIGN.md, Substitutions).
  std::printf("pre-training on %zu unlabeled pairs...\n",
              dataset.unlabeled.size());
  models::PretrainOptions pretrain;
  pretrain.epochs = 2;
  models::PretrainMaskedLm(model, dataset.unlabeled, rng, pretrain);
  std::vector<std::string> records;
  for (const auto& pair : dataset.unlabeled) {
    const size_t sep = pair.find(" [SEP] ");
    records.push_back(pair.substr(0, sep));
    if (sep != std::string::npos) records.push_back(pair.substr(sep + 7));
  }
  models::SameOriginOptions same_origin;
  same_origin.steps = 400;
  models::PretrainSameOrigin(model, records, rng, same_origin);

  // The Table 3 operators applicable to EM, with IDF-weighted sampling.
  std::vector<std::vector<std::string>> docs;
  for (const auto& e : dataset.train) docs.push_back(text::Tokenize(e.text));
  const text::IdfTable idf = text::IdfTable::Build(docs);
  augment::AugmentContext aug_context;
  aug_context.idf = &idf;
  aug_context.synonyms = &augment::SynonymLexicon::Default();
  const auto ops = augment::OpsForTask(/*is_pair_task=*/true,
                                       /*is_record_task=*/true);
  std::printf("EM DA operators:");
  for (auto op : ops) std::printf(" %s", augment::DaOpName(op));
  std::printf("\n\n");

  core::RotomOptions train_options;
  train_options.epochs = 8;
  train_options.batch_size = 16;
  train_options.seed = 1;
  core::RotomTrainer trainer(&model, eval::MetricKind::kF1, train_options);
  auto result = trainer.Train(
      dataset, [&](const std::string& s, Rng& r) {
        const auto op = ops[r.UniformInt(static_cast<int64_t>(ops.size()))];
        return std::vector<std::string>{
            augment::AugmentText(s, op, aug_context, r)};
      });

  std::printf("meta-training done: best valid F1 %.2f%%, %.1fs, filter kept "
              "%.0f%% of augmentations\n",
              result.best_valid_metric, result.seconds,
              100.0 * trainer.last_keep_fraction());
  std::printf("test F1: %.2f%%\n",
              eval::EvaluateModel(model, dataset.test, eval::MetricKind::kF1));
  return 0;
}
