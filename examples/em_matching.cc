// Entity matching with Rotom (paper Sections 2.1 and 6.3), through the
// stable rotom::api facade.
//
// Shows serializing entity records into the "[COL] attr [VAL] value ...
// [SEP] ..." format, training a matcher with api::Train (which runs the
// masked-LM + same-origin pre-training and the Rotom meta-learner
// internally), exporting it as a snapshot, and answering pair-matching
// queries from an InferenceSession — the Ditto-style serve shape.
//
// Run:  ./example_em_matching

#include <cstdio>

#include "data/em_gen.h"
#include "rotom/api.h"
#include "text/records.h"

using namespace rotom;  // NOLINT: example brevity

int main() {
  // Serialization demo, straight from the paper's Section 2.1 example.
  text::Record google;
  google.fields = {{"Name", "Google LLC"}, {"phone", "(866) 246-6453"}};
  text::Record alphabet;
  alphabet.fields = {{"Name", "Alphabet inc"}, {"phone", "6502530000"}};
  const std::string query_pair = text::SerializeEntityPair(google, alphabet);
  std::printf("serialized pair:\n  %s\n\n", query_pair.c_str());

  // A low-resource EM task: 300 labeled pairs of the Abt-Buy stand-in.
  data::EmOptions em_options;
  em_options.budget = 300;
  em_options.test_size = 300;
  em_options.unlabeled_size = 800;
  em_options.seed = 3;
  data::TaskDataset dataset = data::MakeEmDataset("abt_buy", em_options);
  std::printf("dataset: %s  train=%zu (%.0f%% positive)  test=%zu\n",
              dataset.name.c_str(), dataset.train.size(),
              100.0 * data::LabelFraction(dataset.train, 1),
              dataset.test.size());
  std::printf("example pair:\n  %s\n\n", dataset.train[0].text.c_str());

  // One spec trains the matcher end to end: vocabulary, masked-LM +
  // same-origin pre-training on the unlabeled pairs, then the Rotom
  // meta-trainer over the EM operator set (pair/record-aware ops are picked
  // from dataset.is_pair_task / is_record_task).
  //
  // The data input is a streaming DataSource (DESIGN.md §14): instead of
  // epoch-shuffling the 300 labeled pairs, the trainer pulls them endlessly
  // through a ShuffleBuffer for a fixed step budget, validating every
  // `valid_every` steps — the shape a production matcher trains in when the
  // labeled pairs arrive as a feed rather than a file. Swap in
  // data::DataSource::Inline(dataset) for the classic epoch loop, or
  // ::Stream({...csv files...}, ...) to pull straight from CSVs.
  data::DataSource::StreamSpec stream_spec;
  stream_spec.max_steps = 400;
  stream_spec.valid_every = 50;
  stream_spec.shuffle_capacity = 128;
  api::TrainSpec spec;
  spec.source = data::DataSource::StreamOf(dataset, stream_spec);
  spec.method = eval::Method::kRotom;
  spec.seed = 1;
  spec.options.classifier.max_len = 56;
  spec.options.classifier.dim = 32;
  spec.options.classifier.num_layers = 2;
  spec.options.classifier.ffn_dim = 64;
  spec.options.seq2seq.max_src_len = 32;
  spec.options.seq2seq.max_tgt_len = 32;
  spec.options.seq2seq.dim = 32;
  spec.options.seq2seq.ffn_dim = 64;
  spec.options.pretrain.epochs = 2;
  spec.options.same_origin.steps = 400;
  spec.options.invda.epochs = 8;
  spec.options.invda.sampling.top_k = 3;   // records need conservative sampling
  spec.options.invda.corruption_ops = 1;
  spec.options.epochs = 8;

  std::printf("training the matcher (pre-training + meta-learning)...\n");
  auto report = api::Train(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().message().c_str());
    return 1;
  }
  std::printf("meta-training done: test F1 %.2f%% in %.1fs\n",
              report.value().metrics.test_metric,
              report.value().metrics.train_seconds);

  // Export + serve: the snapshot is the deployable artifact; the session
  // answers match queries with no training machinery loaded.
  const std::string path = "em_matcher.rsnap";
  if (auto s = report.value().snapshot.Save(path); !s.ok()) {
    std::fprintf(stderr, "snapshot save failed: %s\n", s.message().c_str());
    return 1;
  }
  auto session = api::InferenceSession::Open(path);
  if (!session.ok()) {
    std::fprintf(stderr, "open failed: %s\n", session.status().message().c_str());
    return 1;
  }

  // Score the Section 2.1 pair plus a few test pairs in one fused forward.
  std::vector<std::string> queries = {query_pair};
  for (size_t i = 0; i < 4 && i < dataset.test.size(); ++i) {
    queries.push_back(dataset.test[i].text);
  }
  const auto predictions = session.value()->PredictBatch(queries);
  std::printf("\nmatch(Google LLC, Alphabet inc) = %s (p_match=%.2f)\n",
              predictions[0].label == 1 ? "yes" : "no",
              predictions[0].probs[1]);
  for (size_t i = 1; i < predictions.size(); ++i) {
    std::printf("test pair %zu: predicted %lld, labeled %lld (p_match=%.2f)\n",
                i, static_cast<long long>(predictions[i].label),
                static_cast<long long>(dataset.test[i - 1].label),
                predictions[i].probs[1]);
  }
  return 0;
}
