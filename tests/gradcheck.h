#ifndef ROTOM_TESTS_GRADCHECK_H_
#define ROTOM_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/variable.h"

namespace rotom {
namespace testing_support {

/// Rebuilds a scalar loss from the current values of a set of leaf
/// variables. Must be deterministic given the leaf values.
using LossFn = std::function<Variable()>;

/// Checks analytic gradients against central finite differences for every
/// element of every leaf. The loss function is re-evaluated with perturbed
/// leaf values, so the graph must be rebuilt on each call.
inline void ExpectGradientsClose(const std::vector<Variable>& leaves,
                                 const LossFn& loss_fn, float eps = 1e-3f,
                                 float tol = 2e-2f) {
  for (const auto& leaf : leaves) {
    ASSERT_TRUE(leaf.requires_grad());
    leaf.ZeroGrad();
  }
  Variable loss = loss_fn();
  ASSERT_EQ(loss.size(), 1);
  loss.Backward();

  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (const auto& leaf : leaves) {
    ASSERT_TRUE(leaf.has_grad()) << "no gradient reached a leaf";
    analytic.push_back(leaf.grad().Clone());
  }

  for (size_t l = 0; l < leaves.size(); ++l) {
    Tensor& v = const_cast<Variable&>(leaves[l]).value();
    for (int64_t i = 0; i < v.size(); ++i) {
      const float saved = v[i];
      v[i] = saved + eps;
      const float up = loss_fn().value()[0];
      v[i] = saved - eps;
      const float down = loss_fn().value()[0];
      v[i] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      const float a = analytic[l][i];
      EXPECT_NEAR(a, numeric, tol * (1.0f + std::fabs(a) + std::fabs(numeric)))
          << "leaf " << l << " element " << i;
    }
  }
}

}  // namespace testing_support
}  // namespace rotom

#endif  // ROTOM_TESTS_GRADCHECK_H_
