#include "tensor/quant.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace rotom {
namespace {

std::vector<float> RandVec(int64_t n, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = scale * static_cast<float>(rng.Normal());
  return v;
}

class QuantTest : public ::testing::Test {
 protected:
  void TearDown() override { SetComputeThreads(0); }
};

TEST_F(QuantTest, QuantizeRowsRoundTripsWithinHalfStep) {
  constexpr int64_t kRows = 13, kCols = 57;
  const auto x = RandVec(kRows * kCols, 1, 0.3f);
  const quant::QuantizedTensor q = quant::QuantizeRows(x.data(), kRows, kCols);
  ASSERT_EQ(q.rows, kRows);
  ASSERT_EQ(q.cols, kCols);
  ASSERT_EQ(q.data.size(), static_cast<size_t>(kRows * kCols));
  ASSERT_EQ(q.scales.size(), static_cast<size_t>(kRows));
  ASSERT_EQ(q.zero_points.size(), static_cast<size_t>(kRows));

  std::vector<float> deq(kRows * kCols);
  quant::Dequantize(q, deq.data());
  for (int64_t r = 0; r < kRows; ++r) {
    for (int64_t c = 0; c < kCols; ++c) {
      const int64_t i = r * kCols + c;
      // Codes stay inside the symmetric range (-128 never appears) and the
      // affine round trip is within half a quantization step everywhere.
      EXPECT_GE(q.data[i], -127);
      EXPECT_LE(q.data[i], 127);
      EXPECT_NEAR(deq[i], x[i], 0.5f * q.scales[r] + 1e-6f)
          << "row " << r << " col " << c;
    }
  }

  const quant::QuantError err = quant::MeasureError(x.data(), q);
  float want_max = 0.0f;
  double want_sum = 0.0;
  for (int64_t i = 0; i < kRows * kCols; ++i) {
    const float e = std::abs(deq[i] - x[i]);
    want_max = std::max(want_max, e);
    want_sum += e;
  }
  EXPECT_NEAR(err.max_abs, want_max, 1e-6f);
  EXPECT_NEAR(err.mean_abs, static_cast<float>(want_sum / (kRows * kCols)),
              1e-6f);
}

TEST_F(QuantTest, ConstantAndZeroRowsAreExact) {
  constexpr int64_t kCols = 9;
  const std::vector<float> x = {
      // row 0: all zero, row 1: constant positive, row 2: constant negative
      0, 0, 0, 0, 0, 0, 0, 0, 0,                              //
      2.5f, 2.5f, 2.5f, 2.5f, 2.5f, 2.5f, 2.5f, 2.5f, 2.5f,  //
      -4, -4, -4, -4, -4, -4, -4, -4, -4,
  };
  const quant::QuantizedTensor q = quant::QuantizeRows(x.data(), 3, kCols);
  std::vector<float> deq(x.size());
  quant::Dequantize(q, deq.data());
  for (size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(deq[i], x[i]) << i;
}

TEST_F(QuantTest, RowSumsMatchManualSums) {
  const auto x = RandVec(7 * 31, 2);
  const quant::QuantizedTensor q = quant::QuantizeRows(x.data(), 7, 31);
  const std::vector<int32_t> sums = quant::RowSums(q);
  ASSERT_EQ(sums.size(), 7u);
  for (int64_t r = 0; r < 7; ++r) {
    int32_t want = 0;
    for (int64_t c = 0; c < 31; ++c) want += q.data[r * 31 + c];
    EXPECT_EQ(sums[r], want) << "row " << r;
  }
}

TEST_F(QuantTest, QuantizeRowsIntoMatchesQuantizeRows) {
  constexpr int64_t kRows = 5, kCols = 43;
  const auto x = RandVec(kRows * kCols, 3);
  const quant::QuantizedTensor q = quant::QuantizeRows(x.data(), kRows, kCols);

  std::vector<int8_t> codes(kRows * kCols);
  std::vector<float> scales(kRows);
  std::vector<int32_t> zps(kRows), sums(kRows);
  quant::QuantizeRowsInto(x.data(), kRows, kCols, codes.data(), scales.data(),
                          zps.data(), sums.data());
  for (int64_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(scales[r], q.scales[static_cast<size_t>(r)]);
    EXPECT_EQ(zps[r], q.zero_points[static_cast<size_t>(r)]);
    int32_t want_sum = 0;
    for (int64_t c = 0; c < kCols; ++c) {
      EXPECT_EQ(codes[r * kCols + c], q.data[r * kCols + c]);
      want_sum += codes[r * kCols + c];
    }
    EXPECT_EQ(sums[r], want_sum);
  }
}

// QLinear must reproduce, to float rounding, the arithmetic it is defined
// as: dequantized(x_q) . dequantized(W_q)^T + bias, with both operands
// quantized by the library itself. Computing that reference in double keeps
// the check independent of the zero-point-correction algebra inside the
// kernel.
TEST_F(QuantTest, QLinearMatchesDequantizedReference) {
  constexpr int64_t kM = 17, kIn = 53, kOut = 19;
  const auto x = RandVec(kM * kIn, 4, 2.0f);
  const auto w = RandVec(kOut * kIn, 5, 0.2f);
  const auto bias = RandVec(kOut, 6);

  const quant::QuantizedTensor wq = quant::QuantizeRows(w.data(), kOut, kIn);
  const std::vector<int32_t> w_sums = quant::RowSums(wq);

  std::vector<int8_t> xcodes(kM * kIn);
  std::vector<float> xscales(kM);
  std::vector<int32_t> xzps(kM), xsums(kM);
  quant::QuantizeRowsInto(x.data(), kM, kIn, xcodes.data(), xscales.data(),
                          xzps.data(), xsums.data());

  std::vector<float> y(kM * kOut);
  quant::QLinear(x.data(), wq, w_sums.data(), bias.data(), y.data(), kM);

  for (int64_t r = 0; r < kM; ++r) {
    for (int64_t o = 0; o < kOut; ++o) {
      double acc = 0.0;
      for (int64_t c = 0; c < kIn; ++c) {
        const double xv = static_cast<double>(xscales[r]) *
                          (xcodes[r * kIn + c] - xzps[r]);
        const double wv = static_cast<double>(wq.scales[o]) *
                          (wq.data[o * kIn + c] - wq.zero_points[o]);
        acc += xv * wv;
      }
      acc += bias[o];
      EXPECT_NEAR(y[r * kOut + o], static_cast<float>(acc),
                  1e-4f * (1.0f + std::abs(static_cast<float>(acc))))
          << "row " << r << " out " << o;
    }
  }

  // And the end-to-end error against the true float product is bounded by
  // quantization noise, not kernel bugs: check a loose absolute budget
  // derived from the operand scales.
  for (int64_t r = 0; r < kM; ++r) {
    for (int64_t o = 0; o < kOut; ++o) {
      double want = 0.0;
      for (int64_t c = 0; c < kIn; ++c)
        want += static_cast<double>(x[r * kIn + c]) * w[o * kIn + c];
      want += bias[o];
      const double budget =
          0.5 * kIn *
          (static_cast<double>(xscales[r]) * 0.2 * 3.0 +
           static_cast<double>(wq.scales[o]) * 2.0 * 3.0);
      EXPECT_NEAR(y[r * kOut + o], want, budget) << "row " << r;
    }
  }
}

TEST_F(QuantTest, QLinearBitIdenticalAcrossThreadCounts) {
  constexpr int64_t kM = 23, kIn = 64, kOut = 31;
  const auto x = RandVec(kM * kIn, 7);
  const auto w = RandVec(kOut * kIn, 8);
  const quant::QuantizedTensor wq = quant::QuantizeRows(w.data(), kOut, kIn);
  const std::vector<int32_t> sums = quant::RowSums(wq);

  auto run = [&](int threads) {
    SetComputeThreads(threads);
    std::vector<float> y(kM * kOut);
    quant::QLinear(x.data(), wq, sums.data(), nullptr, y.data(), kM);
    return y;
  };
  const auto serial = run(1);
  const auto quad = run(4);
  for (size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], quad[i]) << "element " << i;
}

TEST_F(QuantTest, DequantizeToTensorShapesOutput) {
  const auto x = RandVec(4 * 6, 9);
  const quant::QuantizedTensor q = quant::QuantizeRows(x.data(), 4, 6);
  const Tensor t = quant::DequantizeToTensor(q);
  ASSERT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 4);
  EXPECT_EQ(t.size(1), 6);
  std::vector<float> deq(x.size());
  quant::Dequantize(q, deq.data());
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], deq[i]);
}

}  // namespace
}  // namespace rotom
