#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "augment/mixda.h"
#include "augment/ops.h"
#include "augment/registry.h"
#include "tensor/ops.h"
#include "augment/synonyms.h"
#include "text/tokenizer.h"

namespace rotom {
namespace {

using augment::AugmentContext;
using augment::Operator;
using augment::OperatorRegistry;

std::vector<std::string> Toks(const std::string& s) {
  return text::Tokenize(s);
}

int CountToken(const std::vector<std::string>& tokens, const std::string& t) {
  return static_cast<int>(std::count(tokens.begin(), tokens.end(), t));
}

// Registry lookup + apply, the way every production consumer dispatches.
std::vector<std::string> Apply(const std::string& op,
                               const std::vector<std::string>& tokens,
                               const AugmentContext& ctx, Rng& rng) {
  return OperatorRegistry::Global().Require(op).Apply(tokens, ctx, rng);
}

std::vector<std::string> Names(
    const std::vector<const Operator*>& ops) {
  std::vector<std::string> out;
  for (const Operator* op : ops) out.push_back(op->name());
  return out;
}

TEST(SynonymLexiconTest, DefaultHasGroups) {
  const auto& lex = augment::SynonymLexicon::Default();
  EXPECT_GT(lex.size(), 50);
  EXPECT_TRUE(lex.HasSynonyms("great"));
  const auto& syns = lex.Synonyms("great");
  EXPECT_NE(std::find(syns.begin(), syns.end(), "excellent"), syns.end());
  // A token is not its own synonym.
  EXPECT_EQ(std::find(syns.begin(), syns.end(), "great"), syns.end());
}

TEST(SynonymLexiconTest, UnknownTokenEmpty) {
  const auto& lex = augment::SynonymLexicon::Default();
  EXPECT_FALSE(lex.HasSynonyms("xyzzy"));
  EXPECT_TRUE(lex.Synonyms("xyzzy").empty());
}

TEST(SynonymLexiconTest, InterrogativesIncluded) {
  // Example 1.1's hazard: "where" <-> "what" replacement changes intent.
  const auto& lex = augment::SynonymLexicon::Default();
  const auto& syns = lex.Synonyms("where");
  EXPECT_NE(std::find(syns.begin(), syns.end(), "what"), syns.end());
}

TEST(SynonymLexiconTest, CustomGroups) {
  augment::SynonymLexicon lex;
  lex.AddGroup({"foo", "bar", "baz"});
  EXPECT_EQ(lex.Synonyms("foo").size(), 2u);
  EXPECT_EQ(lex.Synonyms("bar").size(), 2u);
}

// ---------------------------------------------------------------------------
// Registry structure.

TEST(RegistryTest, Table3OpsFirstInLegacyOrder) {
  const auto names = OperatorRegistry::Global().Names();
  ASSERT_GE(names.size(), 13u);
  const std::vector<std::string> table3 = {
      "token_del",  "token_repl",   "token_swap", "token_insert", "span_del",
      "span_shuffle", "col_shuffle", "col_del",    "entity_swap"};
  for (size_t i = 0; i < table3.size(); ++i) EXPECT_EQ(names[i], table3[i]);
}

TEST(RegistryTest, AtLeastFourOpsBeyondTable3) {
  int beyond = 0;
  for (const Operator* op : OperatorRegistry::Global().All())
    if ((op->tags() & augment::kBeyondTable3) != 0) ++beyond;
  EXPECT_GE(beyond, 4);
}

TEST(RegistryTest, FindAndRequire) {
  const auto& registry = OperatorRegistry::Global();
  EXPECT_EQ(registry.Find("no_such_op"), nullptr);
  EXPECT_STREQ(registry.Require("entity_swap").name(), "entity_swap");
}

TEST(RegistryTest, DefaultOpsMatchLegacyOpsForTask) {
  const auto& registry = OperatorRegistry::Global();
  // TextCLS: token+span ops only.
  EXPECT_EQ(Names(registry.DefaultOps(false, false)),
            (std::vector<std::string>{"token_del", "token_repl", "token_swap",
                                      "token_insert", "span_del",
                                      "span_shuffle"}));
  // EDT: + col ops.  EM: + entity_swap.
  EXPECT_EQ(registry.DefaultOps(false, true).size(), 8u);
  EXPECT_EQ(Names(registry.DefaultOps(true, true)),
            (std::vector<std::string>{"token_del", "token_repl", "token_swap",
                                      "token_insert", "span_del",
                                      "span_shuffle", "col_shuffle", "col_del",
                                      "entity_swap"}));
}

TEST(RegistryTest, ApplicabilityTagsFilterResolution) {
  const auto& registry = OperatorRegistry::Global();
  // Pair-only and record-only ops never resolve for single-text tasks, even
  // under "all".
  for (const std::string& name :
       Names(registry.Resolve("all", false, false))) {
    EXPECT_NE(name, "entity_swap");
    EXPECT_NE(name, "col_shuffle");
    EXPECT_NE(name, "col_del");
    EXPECT_NE(name, "attr_swap");
    EXPECT_NE(name, "attr_shuffle");
  }
  // "all" for a pair+record task is every registered operator.
  EXPECT_EQ(registry.Resolve("all", true, true).size(),
            registry.All().size());
}

TEST(RegistryTest, ResolveSpecGrammar) {
  const auto& registry = OperatorRegistry::Global();
  // Globs expand in registration order.
  EXPECT_EQ(Names(registry.Resolve("token_*", false, false)),
            (std::vector<std::string>{"token_del", "token_repl", "token_swap",
                                      "token_insert"}));
  // Exact names keep list order; duplicates keep their first position.
  EXPECT_EQ(Names(registry.Resolve("span_del, token_del, span_del", false,
                                   false)),
            (std::vector<std::string>{"span_del", "token_del"}));
  // "default" expands in place and an empty spec means "default".
  EXPECT_EQ(Names(registry.Resolve("", true, true)),
            Names(registry.DefaultOps(true, true)));
  EXPECT_EQ(Names(registry.Resolve("default,num_perturb", false, false)).back(),
            "num_perturb");
}

TEST(RegistryTest, OperatorNameMatchesGlob) {
  EXPECT_TRUE(augment::OperatorNameMatches("token_*", "token_del"));
  EXPECT_TRUE(augment::OperatorNameMatches("*", "anything"));
  EXPECT_TRUE(augment::OperatorNameMatches("*_del", "span_del"));
  EXPECT_FALSE(augment::OperatorNameMatches("token_*", "span_del"));
  EXPECT_FALSE(augment::OperatorNameMatches("token", "token_del"));
}

TEST(RegistryDeathTest, DuplicateNameRegistrationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  class FakeOp final : public Operator {
   public:
    const char* name() const override { return "fake_op"; }
    std::vector<std::string> Apply(const std::vector<std::string>& tokens,
                                   const AugmentContext&,
                                   Rng&) const override {
      return tokens;
    }
  };
  EXPECT_DEATH(
      {
        OperatorRegistry registry;
        registry.Register(std::make_unique<FakeOp>());
        registry.Register(std::make_unique<FakeOp>());
      },
      "duplicate DA operator name 'fake_op'");
}

TEST(RegistryDeathTest, UnknownNameAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(OperatorRegistry::Global().Require("no_such_op"),
               "unknown DA operator 'no_such_op'");
}

// ---------------------------------------------------------------------------
// The never-crash / no-op contract, for every registered operator.

TEST(DaOpsTest, EmptyInputIsNoopForEveryOperator) {
  Rng rng(17);
  const std::vector<std::string> empty;
  for (const Operator* op : OperatorRegistry::Global().All()) {
    EXPECT_TRUE(op->Apply(empty, {}, rng).empty()) << op->name();
  }
}

TEST(DaOpsTest, SingleTokenInputNeverEmptied) {
  const auto single = Toks("zanzibar");
  ASSERT_EQ(single.size(), 1u);
  for (const Operator* op : OperatorRegistry::Global().All()) {
    Rng rng(23);
    for (int i = 0; i < 20; ++i) {
      EXPECT_FALSE(op->Apply(single, {}, rng).empty()) << op->name();
    }
  }
}

TEST(DaOpsTest, EveryOperatorIsDeterministicPerSeed) {
  const auto tokens = Toks(
      "[COL] name [VAL] google inc 42 , mountain view [SEP] "
      "[COL] name [VAL] alphabet co 1998 ( ca )");
  AugmentContext ctx;
  ctx.synonyms = &augment::SynonymLexicon::Default();
  for (const Operator* op : OperatorRegistry::Global().All()) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      Rng a(seed), b(seed);
      EXPECT_EQ(op->Apply(tokens, ctx, a), op->Apply(tokens, ctx, b))
          << op->name() << " seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Table 3 operator behavior (registry dispatch).

TEST(DaOpsTest, TokenDelRemovesExactlyOne) {
  Rng rng(1);
  auto tokens = Toks("where is the orange bowl ?");
  auto out = Apply("token_del", tokens, {}, rng);
  EXPECT_EQ(out.size(), tokens.size() - 1);
}

TEST(DaOpsTest, TokenDelNeverRemovesStructuralTokens) {
  Rng rng(2);
  auto tokens = Toks("[COL] name [VAL] google [SEP] [COL] name [VAL] alphabet");
  for (int i = 0; i < 50; ++i) {
    auto out = Apply("token_del", tokens, {}, rng);
    EXPECT_EQ(CountToken(out, "[COL]"), 2);
    EXPECT_EQ(CountToken(out, "[VAL]"), 2);
    EXPECT_EQ(CountToken(out, "[SEP]"), 1);
  }
}

TEST(DaOpsTest, TokenReplUsesSynonyms) {
  Rng rng(3);
  AugmentContext ctx;
  ctx.synonyms = &augment::SynonymLexicon::Default();
  auto tokens = Toks("the movie was great");
  bool changed = false;
  for (int i = 0; i < 30 && !changed; ++i) {
    auto out = Apply("token_repl", tokens, ctx, rng);
    ASSERT_EQ(out.size(), tokens.size());
    changed = out != tokens;
  }
  EXPECT_TRUE(changed);
}

TEST(DaOpsTest, TokenReplWithoutLexiconIsNoop) {
  Rng rng(4);
  auto tokens = Toks("alpha beta gamma");
  auto out = Apply("token_repl", tokens, {}, rng);
  EXPECT_EQ(out, tokens);
}

TEST(DaOpsTest, TokenSwapPreservesMultiset) {
  Rng rng(5);
  auto tokens = Toks("a b c d e");
  auto out = Apply("token_swap", tokens, {}, rng);
  ASSERT_EQ(out.size(), tokens.size());
  auto sorted_in = tokens, sorted_out = out;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);
}

TEST(DaOpsTest, TokenInsertAddsExactlyOne) {
  Rng rng(6);
  AugmentContext ctx;
  ctx.synonyms = &augment::SynonymLexicon::Default();
  auto tokens = Toks("this is a great movie");
  auto out = Apply("token_insert", tokens, ctx, rng);
  EXPECT_EQ(out.size(), tokens.size() + 1);
}

TEST(DaOpsTest, SpanDelRemovesContiguousRun) {
  Rng rng(7);
  auto tokens = Toks("one two three four five six seven eight");
  auto out = Apply("span_del", tokens, {}, rng);
  EXPECT_LT(out.size(), tokens.size());
  EXPECT_GE(out.size(), tokens.size() - 4);
}

TEST(DaOpsTest, SpanDelKeepsStructuralTokens) {
  Rng rng(8);
  auto tokens = Toks("[COL] title [VAL] effective timestamping in databases");
  for (int i = 0; i < 30; ++i) {
    auto out = Apply("span_del", tokens, {}, rng);
    EXPECT_EQ(CountToken(out, "[COL]"), 1);
    EXPECT_EQ(CountToken(out, "[VAL]"), 1);
  }
}

TEST(DaOpsTest, SpanShufflePreservesMultiset) {
  Rng rng(9);
  auto tokens = Toks("one two three four five");
  auto out = Apply("span_shuffle", tokens, {}, rng);
  ASSERT_EQ(out.size(), tokens.size());
  auto a = tokens, b = out;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(DaOpsTest, ColShufflePreservesColumnContents) {
  Rng rng(10);
  auto tokens =
      Toks("[COL] title [VAL] effective timestamping [COL] year [VAL] 1999");
  bool changed = false;
  for (int i = 0; i < 20; ++i) {
    auto out = Apply("col_shuffle", tokens, {}, rng);
    ASSERT_EQ(out.size(), tokens.size());
    auto a = tokens, b = out;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    changed = changed || out != tokens;
  }
  EXPECT_TRUE(changed);
}

TEST(DaOpsTest, ColDelDropsOneColumn) {
  Rng rng(11);
  auto tokens =
      Toks("[COL] title [VAL] databases [COL] year [VAL] 1999 [COL] venue [VAL] sigmod");
  auto out = Apply("col_del", tokens, {}, rng);
  EXPECT_EQ(CountToken(out, "[COL]"), 2);
}

TEST(DaOpsTest, ColDelKeepsAtLeastOneColumn) {
  Rng rng(12);
  auto tokens = Toks("[COL] title [VAL] databases");
  auto out = Apply("col_del", tokens, {}, rng);
  EXPECT_EQ(out, tokens);
}

TEST(DaOpsTest, ColOpsRespectEntityBoundary) {
  Rng rng(13);
  auto tokens = Toks(
      "[COL] name [VAL] google [COL] phone [VAL] 123 [SEP] "
      "[COL] name [VAL] alphabet [COL] phone [VAL] 456");
  for (int i = 0; i < 40; ++i) {
    auto out = Apply("col_shuffle", tokens, {}, rng);
    // The [SEP] position may shift only if columns of unequal length move,
    // but values must never cross it: google stays left, alphabet right.
    const size_t sep = augment::FindEntitySep(out);
    ASSERT_LT(sep, out.size());
    const auto left = std::vector<std::string>(out.begin(), out.begin() + sep);
    const auto right = std::vector<std::string>(out.begin() + sep, out.end());
    EXPECT_EQ(CountToken(left, "google"), 1);
    EXPECT_EQ(CountToken(right, "alphabet"), 1);
  }
}

TEST(DaOpsTest, EntitySwapSwapsSides) {
  Rng rng(14);
  auto tokens = Toks("[COL] name [VAL] google [SEP] [COL] name [VAL] alphabet");
  auto out = Apply("entity_swap", tokens, {}, rng);
  ASSERT_EQ(out.size(), tokens.size());
  const size_t sep = augment::FindEntitySep(out);
  const auto left = std::vector<std::string>(out.begin(), out.begin() + sep);
  EXPECT_EQ(CountToken(left, "alphabet"), 1);
  EXPECT_EQ(CountToken(left, "google"), 0);
}

TEST(DaOpsTest, EntitySwapIsInvolution) {
  Rng rng(15);
  auto tokens = Toks("[COL] a [VAL] x [SEP] [COL] b [VAL] y");
  auto once = Apply("entity_swap", tokens, {}, rng);
  auto twice = Apply("entity_swap", once, {}, rng);
  EXPECT_EQ(twice, tokens);
}

TEST(DaOpsTest, EntitySwapNoopWithoutSep) {
  Rng rng(16);
  auto tokens = Toks("[COL] a [VAL] x");
  EXPECT_EQ(Apply("entity_swap", tokens, {}, rng), tokens);
}

TEST(DaOpsTest, EntitySwapDrawsNothingFromRng) {
  // The per-example RNG stream feeds everything sampled after the operator
  // (e.g. the InvDA candidate); an entity_swap draw would shift it and break
  // bit-reproducibility of the paper configuration.
  Rng rng(24);
  Rng probe = rng;  // copyable: same state
  auto tokens = Toks("[COL] a [VAL] x [SEP] [COL] b [VAL] y");
  Apply("entity_swap", tokens, {}, rng);
  EXPECT_EQ(rng.Next64(), probe.Next64());
}

TEST(DaOpsTest, IdfBiasPrefersFrequentTokens) {
  // "the" appears everywhere (low IDF -> high corruption weight) and should
  // be deleted far more often than the rare distinguishing token.
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 50; ++i) docs.push_back({"the", "movie", "was"});
  docs.push_back({"zanzibar"});
  text::IdfTable idf = text::IdfTable::Build(docs);
  AugmentContext ctx;
  ctx.idf = &idf;

  Rng rng(18);
  auto tokens = Toks("the movie was zanzibar");
  int zanzibar_deleted = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    auto out = Apply("token_del", tokens, ctx, rng);
    zanzibar_deleted += CountToken(out, "zanzibar") == 0;
  }
  EXPECT_LT(zanzibar_deleted, trials / 8);
}

TEST(DaOpsTest, AugmentTextRoundTrip) {
  Rng rng(19);
  const std::string out = augment::AugmentText(
      "Where is the Orange Bowl ?",
      OperatorRegistry::Global().Require("token_del"), {}, rng);
  EXPECT_FALSE(out.empty());
  EXPECT_LT(out.size(), std::string("where is the orange bowl ?").size() + 1);
}

TEST(DaOpsTest, AugmentTextTaggedCarriesName) {
  Rng rng(25);
  const auto aug = augment::AugmentTextTagged(
      "one two three", OperatorRegistry::Global().Require("token_swap"), {},
      rng);
  EXPECT_STREQ(aug.op, "token_swap");
  EXPECT_FALSE(aug.text.empty());
}

// ---------------------------------------------------------------------------
// Beyond-Table-3 operator behavior.

TEST(NewOpsTest, AttrSwapExchangesValuesKeepsAttrs) {
  auto tokens =
      Toks("[COL] title [VAL] databases rule [COL] year [VAL] 1999");
  Rng rng(26);
  bool swapped = false;
  for (int i = 0; i < 30 && !swapped; ++i) {
    auto out = Apply("attr_swap", tokens, {}, rng);
    ASSERT_EQ(out.size(), tokens.size());
    // Attribute names never move; a swap puts "1999" under title.
    EXPECT_EQ(out[1], "title");
    const auto a = tokens;
    auto b = out;
    std::sort(b.begin(), b.end());
    auto sorted_a = a;
    std::sort(sorted_a.begin(), sorted_a.end());
    EXPECT_EQ(sorted_a, b);  // pure rearrangement
    swapped = out != tokens && out[3] == "1999";
  }
  EXPECT_TRUE(swapped);
}

TEST(NewOpsTest, AttrSwapRespectsEntityBoundary) {
  auto tokens = Toks(
      "[COL] name [VAL] google [COL] city [VAL] mountainview [SEP] "
      "[COL] name [VAL] alphabet [COL] city [VAL] paloalto");
  Rng rng(27);
  for (int i = 0; i < 40; ++i) {
    auto out = Apply("attr_swap", tokens, {}, rng);
    const size_t sep = augment::FindEntitySep(out);
    ASSERT_LT(sep, out.size());
    const auto left = std::vector<std::string>(out.begin(), out.begin() + sep);
    EXPECT_EQ(CountToken(left, "google"), 1);
    EXPECT_EQ(CountToken(left, "alphabet"), 0);
  }
}

TEST(NewOpsTest, AttrSwapSingleColumnIsNoop) {
  auto tokens = Toks("[COL] title [VAL] databases");
  Rng rng(28);
  EXPECT_EQ(Apply("attr_swap", tokens, {}, rng), tokens);
}

TEST(NewOpsTest, AttrShuffleReordersWithinOneValue) {
  auto tokens =
      Toks("[COL] title [VAL] one two three four [COL] year [VAL] 1999");
  Rng rng(29);
  bool changed = false;
  for (int i = 0; i < 40; ++i) {
    auto out = Apply("attr_shuffle", tokens, {}, rng);
    ASSERT_EQ(out.size(), tokens.size());
    // Structure frozen: markers and attribute names in place, year intact.
    EXPECT_EQ(out[0], "[COL]");
    EXPECT_EQ(out[1], "title");
    EXPECT_EQ(out[2], "[VAL]");
    EXPECT_EQ(out[out.size() - 1], "1999");
    auto a = tokens, b = out;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    changed = changed || out != tokens;
  }
  EXPECT_TRUE(changed);
}

TEST(NewOpsTest, IdfSynonymPicksClosestIdf) {
  // "fine" and "excellent" are synonyms of "great"; give "fine" an IDF far
  // from "great" and "excellent" a matching one — the op must always pick
  // "excellent".
  augment::SynonymLexicon lex;
  lex.AddGroup({"great", "fine", "excellent"});
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 64; ++i) docs.push_back({"fine"});
  docs.push_back({"great", "excellent"});
  text::IdfTable idf = text::IdfTable::Build(docs);
  AugmentContext ctx;
  ctx.idf = &idf;
  ctx.synonyms = &lex;
  Rng rng(30);
  auto tokens = Toks("great");
  for (int i = 0; i < 20; ++i) {
    auto out = Apply("idf_synonym", tokens, ctx, rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], "excellent");
  }
}

TEST(NewOpsTest, IdfSynonymWithoutLexiconIsNoop) {
  Rng rng(31);
  auto tokens = Toks("alpha beta");
  EXPECT_EQ(Apply("idf_synonym", tokens, {}, rng), tokens);
}

TEST(NewOpsTest, CharDelShortensOneToken) {
  Rng rng(32);
  auto tokens = Toks("zanzibar island");
  auto out = Apply("char_del", tokens, {}, rng);
  ASSERT_EQ(out.size(), tokens.size());
  size_t total_in = 0, total_out = 0;
  for (const auto& t : tokens) total_in += t.size();
  for (const auto& t : out) total_out += t.size();
  EXPECT_EQ(total_out, total_in - 1);
}

TEST(NewOpsTest, CharDelSkipsSingleCharAndStructuralTokens) {
  Rng rng(33);
  auto tokens = Toks("[COL] a [VAL] b");
  EXPECT_EQ(Apply("char_del", tokens, {}, rng), tokens);
}

TEST(NewOpsTest, NumPerturbAltersOneDigit) {
  Rng rng(34);
  auto tokens = Toks("released in 1999 worldwide");
  for (int i = 0; i < 20; ++i) {
    auto out = Apply("num_perturb", tokens, {}, rng);
    ASSERT_EQ(out.size(), tokens.size());
    EXPECT_NE(out, tokens);  // a digit always changes
    int diff = 0;
    for (size_t j = 0; j < tokens.size(); ++j) diff += out[j] != tokens[j];
    EXPECT_EQ(diff, 1);
  }
}

TEST(NewOpsTest, NumPerturbWithoutDigitsIsNoop) {
  Rng rng(35);
  auto tokens = Toks("no numbers here");
  EXPECT_EQ(Apply("num_perturb", tokens, {}, rng), tokens);
}

TEST(NewOpsTest, PunctDropRemovesOnePunctToken) {
  Rng rng(36);
  auto tokens = Toks("mp3 - player , new");
  auto out = Apply("punct_drop", tokens, {}, rng);
  EXPECT_EQ(out.size(), tokens.size() - 1);
  EXPECT_EQ(CountToken(out, "-") + CountToken(out, ","), 1);
  EXPECT_EQ(CountToken(out, "player"), 1);
}

TEST(NewOpsTest, PunctDropWithoutPunctuationIsNoop) {
  Rng rng(37);
  auto tokens = Toks("clean words only");
  EXPECT_EQ(Apply("punct_drop", tokens, {}, rng), tokens);
}

class EchoBackend final : public augment::RoundTripBackend {
 public:
  explicit EchoBackend(std::string reply) : reply_(std::move(reply)) {}
  std::string RoundTrip(const std::string&, Rng&) const override {
    return reply_;
  }

 private:
  std::string reply_;
};

TEST(NewOpsTest, InvDaRoundTripUsesBackend) {
  EchoBackend backend("alpha beta");
  AugmentContext ctx;
  ctx.round_trip = &backend;
  Rng rng(38);
  auto out = Apply("invda_roundtrip", Toks("anything at all"), ctx, rng);
  EXPECT_EQ(out, Toks("alpha beta"));
}

TEST(NewOpsTest, InvDaRoundTripWithoutBackendIsNoop) {
  Rng rng(39);
  auto tokens = Toks("anything at all");
  EXPECT_EQ(Apply("invda_roundtrip", tokens, {}, rng), tokens);
}

TEST(NewOpsTest, InvDaRoundTripEmptyReplyIsNoop) {
  EchoBackend backend("");
  AugmentContext ctx;
  ctx.round_trip = &backend;
  Rng rng(40);
  auto tokens = Toks("keep me intact");
  EXPECT_EQ(Apply("invda_roundtrip", tokens, ctx, rng), tokens);
}

TEST(FindColumnsTest, SpansAreCorrect) {
  auto tokens = Toks("[COL] title [VAL] a b [COL] year [VAL] 1999");
  auto cols = augment::FindColumns(tokens, 0, tokens.size());
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0].begin, 0u);
  EXPECT_EQ(cols[0].end, 5u);
  EXPECT_EQ(cols[1].begin, 5u);
  EXPECT_EQ(cols[1].end, tokens.size());
}

TEST(MixDaTest, GammaMeanMatchesShape) {
  Rng rng(20);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += augment::SampleGamma(2.5, rng);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(MixDaTest, BetaInUnitInterval) {
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const double b = augment::SampleBeta(0.8, rng);
    EXPECT_GT(b, 0.0);
    EXPECT_LT(b, 1.0);
  }
}

TEST(MixDaTest, LambdaFoldedAboveHalf) {
  Rng rng(22);
  for (int i = 0; i < 200; ++i) {
    const double l = augment::MixDaLambda(0.8, rng);
    EXPECT_GE(l, 0.5);
    EXPECT_LE(l, 1.0);
  }
}

TEST(MixDaTest, InterpolationIsConvex) {
  Variable a(Tensor::FromVector({2, 2}, {0, 0, 2, 2}), false);
  Variable b(Tensor::FromVector({2, 2}, {4, 4, 4, 4}), false);
  Variable mix = augment::InterpolateRepresentations(a, b, {0.75, 0.5});
  EXPECT_NEAR(mix.value().at({0, 0}), 1.0f, 1e-5f);   // .75*0 + .25*4
  EXPECT_NEAR(mix.value().at({1, 0}), 3.0f, 1e-5f);   // .5*2 + .5*4
}

TEST(MixDaTest, GradientsFlowThroughInterpolation) {
  Variable a(Tensor::Ones({1, 3}), true);
  Variable b(Tensor::Ones({1, 3}), true);
  Variable mix = augment::InterpolateRepresentations(a, b, {0.6});
  ops::Sum(mix).Backward();
  EXPECT_NEAR(a.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(b.grad()[0], 0.4f, 1e-5f);
}

}  // namespace
}  // namespace rotom
