#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "augment/mixda.h"
#include "augment/ops.h"
#include "tensor/ops.h"
#include "augment/synonyms.h"
#include "text/tokenizer.h"

namespace rotom {
namespace {

using augment::AugmentContext;
using augment::DaOp;

std::vector<std::string> Toks(const std::string& s) {
  return text::Tokenize(s);
}

int CountToken(const std::vector<std::string>& tokens, const std::string& t) {
  return static_cast<int>(std::count(tokens.begin(), tokens.end(), t));
}

TEST(SynonymLexiconTest, DefaultHasGroups) {
  const auto& lex = augment::SynonymLexicon::Default();
  EXPECT_GT(lex.size(), 50);
  EXPECT_TRUE(lex.HasSynonyms("great"));
  const auto& syns = lex.Synonyms("great");
  EXPECT_NE(std::find(syns.begin(), syns.end(), "excellent"), syns.end());
  // A token is not its own synonym.
  EXPECT_EQ(std::find(syns.begin(), syns.end(), "great"), syns.end());
}

TEST(SynonymLexiconTest, UnknownTokenEmpty) {
  const auto& lex = augment::SynonymLexicon::Default();
  EXPECT_FALSE(lex.HasSynonyms("xyzzy"));
  EXPECT_TRUE(lex.Synonyms("xyzzy").empty());
}

TEST(SynonymLexiconTest, InterrogativesIncluded) {
  // Example 1.1's hazard: "where" <-> "what" replacement changes intent.
  const auto& lex = augment::SynonymLexicon::Default();
  const auto& syns = lex.Synonyms("where");
  EXPECT_NE(std::find(syns.begin(), syns.end(), "what"), syns.end());
}

TEST(SynonymLexiconTest, CustomGroups) {
  augment::SynonymLexicon lex;
  lex.AddGroup({"foo", "bar", "baz"});
  EXPECT_EQ(lex.Synonyms("foo").size(), 2u);
  EXPECT_EQ(lex.Synonyms("bar").size(), 2u);
}

TEST(DaOpsTest, NamesAndEnumeration) {
  EXPECT_EQ(augment::AllDaOps().size(), 9u);
  EXPECT_STREQ(augment::DaOpName(DaOp::kTokenDel), "token_del");
  EXPECT_STREQ(augment::DaOpName(DaOp::kEntitySwap), "entity_swap");
}

TEST(DaOpsTest, OpsForTaskRespectApplicability) {
  auto textcls = augment::OpsForTask(false, false);
  EXPECT_EQ(textcls.size(), 6u);  // token+span ops only
  auto edt = augment::OpsForTask(false, true);
  EXPECT_EQ(edt.size(), 8u);  // + col ops
  auto em = augment::OpsForTask(true, true);
  EXPECT_EQ(em.size(), 9u);  // + entity_swap
}

TEST(DaOpsTest, TokenDelRemovesExactlyOne) {
  Rng rng(1);
  auto tokens = Toks("where is the orange bowl ?");
  auto out = augment::ApplyDaOp(DaOp::kTokenDel, tokens, {}, rng);
  EXPECT_EQ(out.size(), tokens.size() - 1);
}

TEST(DaOpsTest, TokenDelNeverRemovesStructuralTokens) {
  Rng rng(2);
  auto tokens = Toks("[COL] name [VAL] google [SEP] [COL] name [VAL] alphabet");
  for (int i = 0; i < 50; ++i) {
    auto out = augment::ApplyDaOp(DaOp::kTokenDel, tokens, {}, rng);
    EXPECT_EQ(CountToken(out, "[COL]"), 2);
    EXPECT_EQ(CountToken(out, "[VAL]"), 2);
    EXPECT_EQ(CountToken(out, "[SEP]"), 1);
  }
}

TEST(DaOpsTest, TokenReplUsesSynonyms) {
  Rng rng(3);
  AugmentContext ctx;
  ctx.synonyms = &augment::SynonymLexicon::Default();
  auto tokens = Toks("the movie was great");
  bool changed = false;
  for (int i = 0; i < 30 && !changed; ++i) {
    auto out = augment::ApplyDaOp(DaOp::kTokenRepl, tokens, ctx, rng);
    ASSERT_EQ(out.size(), tokens.size());
    changed = out != tokens;
  }
  EXPECT_TRUE(changed);
}

TEST(DaOpsTest, TokenReplWithoutLexiconIsNoop) {
  Rng rng(4);
  auto tokens = Toks("alpha beta gamma");
  auto out = augment::ApplyDaOp(DaOp::kTokenRepl, tokens, {}, rng);
  EXPECT_EQ(out, tokens);
}

TEST(DaOpsTest, TokenSwapPreservesMultiset) {
  Rng rng(5);
  auto tokens = Toks("a b c d e");
  auto out = augment::ApplyDaOp(DaOp::kTokenSwap, tokens, {}, rng);
  ASSERT_EQ(out.size(), tokens.size());
  auto sorted_in = tokens, sorted_out = out;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);
}

TEST(DaOpsTest, TokenInsertAddsExactlyOne) {
  Rng rng(6);
  AugmentContext ctx;
  ctx.synonyms = &augment::SynonymLexicon::Default();
  auto tokens = Toks("this is a great movie");
  auto out = augment::ApplyDaOp(DaOp::kTokenInsert, tokens, ctx, rng);
  EXPECT_EQ(out.size(), tokens.size() + 1);
}

TEST(DaOpsTest, SpanDelRemovesContiguousRun) {
  Rng rng(7);
  auto tokens = Toks("one two three four five six seven eight");
  auto out = augment::ApplyDaOp(DaOp::kSpanDel, tokens, {}, rng);
  EXPECT_LT(out.size(), tokens.size());
  EXPECT_GE(out.size(), tokens.size() - 4);
}

TEST(DaOpsTest, SpanDelKeepsStructuralTokens) {
  Rng rng(8);
  auto tokens = Toks("[COL] title [VAL] effective timestamping in databases");
  for (int i = 0; i < 30; ++i) {
    auto out = augment::ApplyDaOp(DaOp::kSpanDel, tokens, {}, rng);
    EXPECT_EQ(CountToken(out, "[COL]"), 1);
    EXPECT_EQ(CountToken(out, "[VAL]"), 1);
  }
}

TEST(DaOpsTest, SpanShufflePreservesMultiset) {
  Rng rng(9);
  auto tokens = Toks("one two three four five");
  auto out = augment::ApplyDaOp(DaOp::kSpanShuffle, tokens, {}, rng);
  ASSERT_EQ(out.size(), tokens.size());
  auto a = tokens, b = out;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(DaOpsTest, ColShufflePreservesColumnContents) {
  Rng rng(10);
  auto tokens =
      Toks("[COL] title [VAL] effective timestamping [COL] year [VAL] 1999");
  bool changed = false;
  for (int i = 0; i < 20; ++i) {
    auto out = augment::ApplyDaOp(DaOp::kColShuffle, tokens, {}, rng);
    ASSERT_EQ(out.size(), tokens.size());
    auto a = tokens, b = out;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    changed = changed || out != tokens;
  }
  EXPECT_TRUE(changed);
}

TEST(DaOpsTest, ColDelDropsOneColumn) {
  Rng rng(11);
  auto tokens =
      Toks("[COL] title [VAL] databases [COL] year [VAL] 1999 [COL] venue [VAL] sigmod");
  auto out = augment::ApplyDaOp(DaOp::kColDel, tokens, {}, rng);
  EXPECT_EQ(CountToken(out, "[COL]"), 2);
}

TEST(DaOpsTest, ColDelKeepsAtLeastOneColumn) {
  Rng rng(12);
  auto tokens = Toks("[COL] title [VAL] databases");
  auto out = augment::ApplyDaOp(DaOp::kColDel, tokens, {}, rng);
  EXPECT_EQ(out, tokens);
}

TEST(DaOpsTest, ColOpsRespectEntityBoundary) {
  Rng rng(13);
  auto tokens = Toks(
      "[COL] name [VAL] google [COL] phone [VAL] 123 [SEP] "
      "[COL] name [VAL] alphabet [COL] phone [VAL] 456");
  for (int i = 0; i < 40; ++i) {
    auto out = augment::ApplyDaOp(DaOp::kColShuffle, tokens, {}, rng);
    // The [SEP] position may shift only if columns of unequal length move,
    // but values must never cross it: google stays left, alphabet right.
    const size_t sep = augment::FindEntitySep(out);
    ASSERT_LT(sep, out.size());
    const auto left = std::vector<std::string>(out.begin(), out.begin() + sep);
    const auto right = std::vector<std::string>(out.begin() + sep, out.end());
    EXPECT_EQ(CountToken(left, "google"), 1);
    EXPECT_EQ(CountToken(right, "alphabet"), 1);
  }
}

TEST(DaOpsTest, EntitySwapSwapsSides) {
  Rng rng(14);
  auto tokens = Toks("[COL] name [VAL] google [SEP] [COL] name [VAL] alphabet");
  auto out = augment::ApplyDaOp(DaOp::kEntitySwap, tokens, {}, rng);
  ASSERT_EQ(out.size(), tokens.size());
  const size_t sep = augment::FindEntitySep(out);
  const auto left = std::vector<std::string>(out.begin(), out.begin() + sep);
  EXPECT_EQ(CountToken(left, "alphabet"), 1);
  EXPECT_EQ(CountToken(left, "google"), 0);
}

TEST(DaOpsTest, EntitySwapIsInvolution) {
  Rng rng(15);
  auto tokens = Toks("[COL] a [VAL] x [SEP] [COL] b [VAL] y");
  auto once = augment::ApplyDaOp(DaOp::kEntitySwap, tokens, {}, rng);
  auto twice = augment::ApplyDaOp(DaOp::kEntitySwap, once, {}, rng);
  EXPECT_EQ(twice, tokens);
}

TEST(DaOpsTest, EntitySwapNoopWithoutSep) {
  Rng rng(16);
  auto tokens = Toks("[COL] a [VAL] x");
  EXPECT_EQ(augment::ApplyDaOp(DaOp::kEntitySwap, tokens, {}, rng), tokens);
}

TEST(DaOpsTest, EmptyInputIsNoop) {
  Rng rng(17);
  std::vector<std::string> empty;
  for (DaOp op : augment::AllDaOps())
    EXPECT_TRUE(augment::ApplyDaOp(op, empty, {}, rng).empty());
}

TEST(DaOpsTest, IdfBiasPrefersFrequentTokens) {
  // "the" appears everywhere (low IDF -> high corruption weight) and should
  // be deleted far more often than the rare distinguishing token.
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 50; ++i) docs.push_back({"the", "movie", "was"});
  docs.push_back({"zanzibar"});
  text::IdfTable idf = text::IdfTable::Build(docs);
  AugmentContext ctx;
  ctx.idf = &idf;

  Rng rng(18);
  auto tokens = Toks("the movie was zanzibar");
  int zanzibar_deleted = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    auto out = augment::ApplyDaOp(DaOp::kTokenDel, tokens, ctx, rng);
    zanzibar_deleted += CountToken(out, "zanzibar") == 0;
  }
  EXPECT_LT(zanzibar_deleted, trials / 8);
}

TEST(DaOpsTest, AugmentTextRoundTrip) {
  Rng rng(19);
  const std::string out =
      augment::AugmentText("Where is the Orange Bowl ?", DaOp::kTokenDel, {},
                           rng);
  EXPECT_FALSE(out.empty());
  EXPECT_LT(out.size(), std::string("where is the orange bowl ?").size() + 1);
}

TEST(FindColumnsTest, SpansAreCorrect) {
  auto tokens = Toks("[COL] title [VAL] a b [COL] year [VAL] 1999");
  auto cols = augment::FindColumns(tokens, 0, tokens.size());
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0].begin, 0u);
  EXPECT_EQ(cols[0].end, 5u);
  EXPECT_EQ(cols[1].begin, 5u);
  EXPECT_EQ(cols[1].end, tokens.size());
}

TEST(MixDaTest, GammaMeanMatchesShape) {
  Rng rng(20);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += augment::SampleGamma(2.5, rng);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(MixDaTest, BetaInUnitInterval) {
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const double b = augment::SampleBeta(0.8, rng);
    EXPECT_GT(b, 0.0);
    EXPECT_LT(b, 1.0);
  }
}

TEST(MixDaTest, LambdaFoldedAboveHalf) {
  Rng rng(22);
  for (int i = 0; i < 200; ++i) {
    const double l = augment::MixDaLambda(0.8, rng);
    EXPECT_GE(l, 0.5);
    EXPECT_LE(l, 1.0);
  }
}

TEST(MixDaTest, InterpolationIsConvex) {
  Variable a(Tensor::FromVector({2, 2}, {0, 0, 2, 2}), false);
  Variable b(Tensor::FromVector({2, 2}, {4, 4, 4, 4}), false);
  Variable mix = augment::InterpolateRepresentations(a, b, {0.75, 0.5});
  EXPECT_NEAR(mix.value().at({0, 0}), 1.0f, 1e-5f);   // .75*0 + .25*4
  EXPECT_NEAR(mix.value().at({1, 0}), 3.0f, 1e-5f);   // .5*2 + .5*4
}

TEST(MixDaTest, GradientsFlowThroughInterpolation) {
  Variable a(Tensor::Ones({1, 3}), true);
  Variable b(Tensor::Ones({1, 3}), true);
  Variable mix = augment::InterpolateRepresentations(a, b, {0.6});
  ops::Sum(mix).Backward();
  EXPECT_NEAR(a.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(b.grad()[0], 0.4f, 1e-5f);
}

}  // namespace
}  // namespace rotom
