#include <set>
#include <string>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/edt_gen.h"
#include "data/em_gen.h"
#include "data/textcls_gen.h"
#include "text/tokenizer.h"

namespace rotom {
namespace {

using data::EdtOptions;
using data::EmOptions;
using data::Example;
using data::TaskDataset;
using data::TextClsOptions;

TEST(DatasetHelpersTest, SampleExamplesSizeAndMembership) {
  std::vector<Example> pool;
  for (int i = 0; i < 50; ++i) pool.push_back({"t" + std::to_string(i), i % 2});
  Rng rng(1);
  auto sample = data::SampleExamples(pool, 10, rng);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::string> texts;
  for (const auto& e : sample) texts.insert(e.text);
  EXPECT_EQ(texts.size(), 10u);  // distinct
}

TEST(DatasetHelpersTest, SampleExamplesClampsToPool) {
  std::vector<Example> pool = {{"a", 0}, {"b", 1}};
  Rng rng(2);
  EXPECT_EQ(data::SampleExamples(pool, 10, rng).size(), 2u);
}

TEST(DatasetHelpersTest, SampleBalancedEqualClasses) {
  std::vector<Example> pool;
  for (int i = 0; i < 90; ++i) pool.push_back({"x", 0});
  for (int i = 0; i < 10; ++i) pool.push_back({"y", 1});
  Rng rng(3);
  auto sample = data::SampleBalanced(pool, 20, 2, rng);
  int64_t ones = 0;
  for (const auto& e : sample) ones += e.label;
  EXPECT_EQ(ones, 10);
  EXPECT_EQ(sample.size(), 20u);
}

TEST(DatasetHelpersTest, LabelFraction) {
  std::vector<Example> pool = {{"a", 1}, {"b", 0}, {"c", 1}, {"d", 1}};
  EXPECT_DOUBLE_EQ(data::LabelFraction(pool, 1), 0.75);
  EXPECT_DOUBLE_EQ(data::LabelFraction({}, 1), 0.0);
}

class TextClsGenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TextClsGenTest, SizesAndLabels) {
  TextClsOptions options;
  options.train_size = 60;
  options.test_size = 100;
  options.unlabeled_size = 100;
  options.seed = 1;
  TaskDataset ds = data::MakeTextClsDataset(GetParam(), options);
  EXPECT_EQ(ds.train.size(), 60u);
  EXPECT_EQ(ds.valid.size(), 60u);
  EXPECT_EQ(ds.test.size(), 100u);
  EXPECT_EQ(ds.unlabeled.size(), 100u);
  EXPECT_EQ(ds.num_classes, data::TextClsNumClasses(GetParam()));
  EXPECT_FALSE(ds.is_pair_task);
  for (const auto& e : ds.train) {
    EXPECT_GE(e.label, 0);
    EXPECT_LT(e.label, ds.num_classes);
    EXPECT_FALSE(e.text.empty());
  }
}

TEST_P(TextClsGenTest, DeterministicGivenSeed) {
  TextClsOptions options;
  options.train_size = 10;
  options.test_size = 10;
  options.unlabeled_size = 10;
  options.seed = 7;
  TaskDataset a = data::MakeTextClsDataset(GetParam(), options);
  TaskDataset b = data::MakeTextClsDataset(GetParam(), options);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].text, b.train[i].text);
    EXPECT_EQ(a.train[i].label, b.train[i].label);
  }
}

TEST_P(TextClsGenTest, SeedChangesSample) {
  TextClsOptions a_opts;
  a_opts.train_size = 20;
  a_opts.seed = 1;
  TextClsOptions b_opts = a_opts;
  b_opts.seed = 2;
  TaskDataset a = data::MakeTextClsDataset(GetParam(), a_opts);
  TaskDataset b = data::MakeTextClsDataset(GetParam(), b_opts);
  int differing = 0;
  for (size_t i = 0; i < a.train.size(); ++i)
    differing += a.train[i].text != b.train[i].text;
  EXPECT_GT(differing, 0);
}

INSTANTIATE_TEST_SUITE_P(AllTextCls, TextClsGenTest,
                         ::testing::Values("ag", "am2", "am5", "sst2", "sst5",
                                           "trec", "atis", "snips", "imdb"));

TEST(TextClsGenTest, AllClassesRepresented) {
  TextClsOptions options;
  options.train_size = 300;
  options.seed = 3;
  TaskDataset ds = data::MakeTextClsDataset("trec", options);
  std::set<int64_t> labels;
  for (const auto& e : ds.train) labels.insert(e.label);
  EXPECT_EQ(labels.size(), 6u);
}

TEST(TextClsGenTest, ImdbReviewsAreLong) {
  TextClsOptions options;
  options.train_size = 20;
  options.seed = 4;
  TaskDataset imdb = data::MakeTextClsDataset("imdb", options);
  TaskDataset sst = data::MakeTextClsDataset("sst2", options);
  double imdb_len = 0, sst_len = 0;
  for (const auto& e : imdb.train) imdb_len += text::Tokenize(e.text).size();
  for (const auto& e : sst.train) sst_len += text::Tokenize(e.text).size();
  EXPECT_GT(imdb_len / imdb.train.size(), 2.0 * sst_len / sst.train.size());
}

class EmGenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EmGenTest, StructureAndSerialization) {
  EmOptions options;
  options.budget = 100;
  options.test_size = 80;
  options.unlabeled_size = 100;
  options.seed = 1;
  TaskDataset ds = data::MakeEmDataset(GetParam(), options);
  EXPECT_EQ(ds.train.size(), 100u);
  EXPECT_EQ(ds.test.size(), 80u);
  EXPECT_TRUE(ds.is_pair_task);
  EXPECT_TRUE(ds.is_record_task);
  // Validation reuses training per the paper's labeling-budget trick.
  ASSERT_EQ(ds.valid.size(), ds.train.size());
  EXPECT_EQ(ds.valid[0].text, ds.train[0].text);
  for (const auto& e : ds.train) {
    EXPECT_NE(e.text.find("[COL]"), std::string::npos);
    EXPECT_NE(e.text.find(" [SEP] "), std::string::npos);
    EXPECT_NE(e.text.find("[VAL]"), std::string::npos);
  }
}

TEST_P(EmGenTest, BothLabelsPresentAndImbalanced) {
  EmOptions options;
  options.budget = 300;
  options.seed = 2;
  TaskDataset ds = data::MakeEmDataset(GetParam(), options);
  const double pos = data::LabelFraction(ds.train, 1);
  EXPECT_GT(pos, 0.1);
  EXPECT_LT(pos, 0.5);  // matches ~1:3 positive:negative pools
}

TEST_P(EmGenTest, Deterministic) {
  EmOptions options;
  options.budget = 30;
  options.seed = 5;
  TaskDataset a = data::MakeEmDataset(GetParam(), options);
  TaskDataset b = data::MakeEmDataset(GetParam(), options);
  for (size_t i = 0; i < a.train.size(); ++i)
    EXPECT_EQ(a.train[i].text, b.train[i].text);
}

INSTANTIATE_TEST_SUITE_P(AllEm, EmGenTest,
                         ::testing::ValuesIn(data::EmDatasetNames()));

TEST(EmGenTest, DirtyVariantDiffers) {
  EmOptions clean_opts;
  clean_opts.budget = 50;
  clean_opts.seed = 3;
  EmOptions dirty_opts = clean_opts;
  dirty_opts.dirty = true;
  TaskDataset clean = data::MakeEmDataset("dblp_acm", clean_opts);
  TaskDataset dirty = data::MakeEmDataset("dblp_acm", dirty_opts);
  EXPECT_EQ(dirty.name, "dblp_acm_dirty");
  EXPECT_NE(clean.train[0].text, dirty.train[0].text);
}

TEST(EmGenTest, DirtyVariantFlags) {
  EXPECT_TRUE(data::EmHasDirtyVariant("dblp_acm"));
  EXPECT_TRUE(data::EmHasDirtyVariant("walmart_amazon"));
  EXPECT_FALSE(data::EmHasDirtyVariant("abt_buy"));
  EXPECT_FALSE(data::EmHasDirtyVariant("amazon_google"));
}

class EdtGenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EdtGenTest, StructureAndBalance) {
  EdtOptions options;
  options.budget = 100;
  options.seed = 1;
  TaskDataset ds = data::MakeEdtDataset(GetParam(), options);
  EXPECT_EQ(ds.train.size(), 100u);
  EXPECT_FALSE(ds.test.empty());
  EXPECT_TRUE(ds.is_record_task);
  EXPECT_FALSE(ds.is_pair_task);
  // Train is balanced; test keeps the natural (skewed) error rate.
  EXPECT_NEAR(data::LabelFraction(ds.train, 1), 0.5, 1e-9);
  EXPECT_LT(data::LabelFraction(ds.test, 1), 0.45);
  EXPECT_GT(data::LabelFraction(ds.test, 1), 0.02);
  for (const auto& e : ds.train) {
    EXPECT_EQ(e.text.find("[COL]"), 0u);
    EXPECT_NE(e.text.find("[VAL]"), std::string::npos);
    EXPECT_EQ(e.text.find("[SEP]"), std::string::npos);  // cell-only input
  }
}

TEST_P(EdtGenTest, TestSetCoversWholeRows) {
  EdtOptions options;
  options.budget = 50;
  options.test_rows = 10;
  options.seed = 2;
  TaskDataset ds = data::MakeEdtDataset(GetParam(), options);
  // Every test row contributes all of its cells, so |test| is a multiple of
  // the column count (>= 4 columns in every schema).
  EXPECT_EQ(ds.test.size() % 10, 0u);
  EXPECT_GE(ds.test.size() / 10, 4u);
}

TEST_P(EdtGenTest, Deterministic) {
  EdtOptions options;
  options.budget = 40;
  options.seed = 9;
  TaskDataset a = data::MakeEdtDataset(GetParam(), options);
  TaskDataset b = data::MakeEdtDataset(GetParam(), options);
  for (size_t i = 0; i < a.train.size(); ++i)
    EXPECT_EQ(a.train[i].text, b.train[i].text);
}

INSTANTIATE_TEST_SUITE_P(AllEdt, EdtGenTest,
                         ::testing::ValuesIn(data::EdtDatasetNames()));

TEST(EdtGenTest, HospitalErrorsContainX) {
  EdtOptions options;
  options.budget = 200;
  options.seed = 4;
  TaskDataset ds = data::MakeEdtDataset("hospital", options);
  int64_t dirty_with_x = 0, dirty_total = 0;
  for (const auto& e : ds.train) {
    if (e.label == 1) {
      ++dirty_total;
      dirty_with_x += e.text.find('x') != std::string::npos;
    }
  }
  ASSERT_GT(dirty_total, 0);
  EXPECT_GT(static_cast<double>(dirty_with_x) / dirty_total, 0.95);
}

TEST(EdtGenTest, TaxRateErrorsViolateDomain) {
  EdtOptions options;
  options.budget = 400;
  options.seed = 5;
  TaskDataset ds = data::MakeEdtDataset("tax", options);
  bool found_bad_rate = false;
  for (const auto& e : ds.train) {
    if (e.label == 1 && e.text.find("[COL] rate") == 0) {
      // Clean rates start "0."; corrupted ones start with 1-9.
      const size_t val = e.text.find("[VAL] ") + 6;
      if (e.text[val] != '0') found_bad_rate = true;
    }
  }
  EXPECT_TRUE(found_bad_rate);
}

}  // namespace
}  // namespace rotom
