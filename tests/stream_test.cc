// The streaming data layer (stream/, DESIGN.md §14) and its trainer
// integration: stage determinism (every random decision derived from
// per-stage split seeds + draw counters), checkpointable stream state with
// restore-by-replay, the DataSource factory, and the two headline
// trainer-level guarantees — batch sequences bit-identical across prefetch
// thread counts, and kill-and-resume from a TrainCheckpoint reproducing the
// uninterrupted loss trajectory float-for-float. scripts/check.sh
// additionally runs this binary under TSan at several pool sizes.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/finetune.h"
#include "core/rotom_trainer.h"
#include "data/loader.h"
#include "data/source.h"
#include "rotom/api.h"
#include "stream/augment_stage.h"
#include "stream/csv_source.h"
#include "stream/stream.h"
#include "text/tokenizer.h"
#include "util/thread_pool.h"

namespace rotom {
namespace {

std::shared_ptr<text::Vocabulary> TaskVocab() {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w :
       {"the", "movie", "was", "great", "terrible", "really", "a", "not",
        "good", "bad", "boring", "fantastic", "product", "awful", "fine"})
    vocab->AddToken(w);
  return vocab;
}

models::ClassifierConfig TinyConfig() {
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 10;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.1f;  // dropout on: it must not disturb determinism
  return config;
}

std::vector<data::Example> PosExamples() {
  return {{"the movie was great", 1},   {"really great movie", 1},
          {"a fantastic movie", 1},     {"the product was good", 1},
          {"good good movie", 1},       {"really fine product", 1}};
}

std::vector<data::Example> NegExamples() {
  return {{"the movie was terrible", 0}, {"really bad movie", 0},
          {"a boring movie", 0},         {"the product was awful", 0},
          {"bad bad movie", 0},          {"really awful product", 0}};
}

data::TaskDataset TinyTask() {
  data::TaskDataset ds;
  ds.name = "tiny";
  ds.num_classes = 2;
  for (const auto& e : PosExamples()) ds.train.push_back(e);
  for (const auto& e : NegExamples()) ds.train.push_back(e);
  ds.valid = ds.train;
  ds.test = {{"the movie was fantastic", 1}, {"a terrible movie", 0}};
  for (const auto& e : ds.train) ds.unlabeled.push_back(e.text);
  return ds;
}

// Deterministic, thread-safe augmenter: duplicates an rng-chosen token.
std::string DuplicateToken(const std::string& input, Rng& rng) {
  auto tokens = text::Tokenize(input);
  if (tokens.empty()) return input;
  const size_t i = rng.UniformInt(static_cast<int64_t>(tokens.size()));
  tokens.insert(tokens.begin() + i, tokens[i]);
  return text::Detokenize(tokens);
}

class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { SetComputeThreads(n); }
  ~ThreadGuard() { SetComputeThreads(0); }
};

// The reference pipeline of the trainer-level tests: a weighted mix of two
// vector sources behind a shuffle buffer — every stage type that carries
// state, in one stack.
std::shared_ptr<stream::ExampleStream> MixOfTwoStream(uint64_t seed = 21) {
  std::vector<std::unique_ptr<stream::ExampleStream>> children;
  children.push_back(
      std::make_unique<stream::VectorSource>("pos", PosExamples()));
  children.push_back(
      std::make_unique<stream::VectorSource>("neg", NegExamples()));
  auto mix = stream::Mix::Create(std::move(children), {1.0, 1.0}, seed);
  EXPECT_TRUE(mix.ok());
  return std::make_shared<stream::ShuffleBuffer>(std::move(mix).value(),
                                                 /*capacity=*/8, seed + 1);
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  ASSERT_TRUE(out.good());
}

// ---------------------------------------------------------------- state --

TEST(StreamStateTest, RoundTripsThroughSerialize) {
  stream::StreamState state;
  state.Set("root", 42);
  state.Set("root.inner", 50);
  state.Set("root.inner.s0", 30);
  EXPECT_EQ(state.Get("root"), 42);
  EXPECT_EQ(state.Get("absent", -7), -7);
  EXPECT_TRUE(state.Has("root.inner"));
  auto parsed = stream::StreamState::Parse(state.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), state);
  state.Set("root", 43);
  EXPECT_NE(parsed.value(), state);
}

TEST(StreamStateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(stream::StreamState::Parse("no-equals-sign").ok());
  EXPECT_FALSE(stream::StreamState::Parse("key=notanumber").ok());
}

// -------------------------------------------------------------- sources --

TEST(VectorSourceTest, WrapsAroundForever) {
  stream::VectorSource source("v", PosExamples());
  const size_t n = PosExamples().size();
  for (size_t i = 0; i < 2 * n + 3; ++i) {
    auto e = source.Next();
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e.value().text, PosExamples()[i % n].text);
  }
  EXPECT_EQ(source.draws(), static_cast<int64_t>(2 * n + 3));
}

TEST(CsvFileSourceTest, MatchesMaterializedLoaderAndWraps) {
  const std::string path = TempPath("stream_src.csv");
  WriteFile(path,
            "text,label\n"
            "the movie was great,pos\n"
            "a boring movie,neg\n"
            "really fine product,pos\n");
  std::vector<std::string> label_names;
  auto materialized = data::LoadTextClsCsv(path, "text", "label",
                                           &label_names);
  ASSERT_TRUE(materialized.ok());

  auto labels = std::make_shared<stream::LabelTable>();
  auto source = stream::CsvFileSource::Open(path, {}, labels);
  ASSERT_TRUE(source.ok());
  // Two passes: the first must match the materialized load example for
  // example, the second (after the transparent re-open) must repeat it.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& want : materialized.value()) {
      auto got = source.value()->Next();
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value().text, want.text);
      EXPECT_EQ(got.value().label, want.label);
    }
  }
  EXPECT_EQ(source.value()->passes(), 1);
  EXPECT_EQ(labels->names(), label_names);
}

TEST(CsvFileSourceTest, ReportsErrors) {
  auto labels = std::make_shared<stream::LabelTable>();
  EXPECT_FALSE(
      stream::CsvFileSource::Open("/nonexistent/x.csv", {}, labels).ok());

  const std::string path = TempPath("stream_badcol.csv");
  WriteFile(path, "body,label\nhello,pos\n");
  EXPECT_FALSE(stream::CsvFileSource::Open(path, {}, labels).ok());

  const std::string ragged = TempPath("stream_ragged.csv");
  WriteFile(ragged, "text,label\nok,pos\nonly-one-field\n");
  auto source = stream::CsvFileSource::Open(ragged, {}, labels);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(source.value()->Next().ok());
  EXPECT_FALSE(source.value()->Next().ok());
}

// ------------------------------------------------------------------ mix --

TEST(MixTest, ValidatesSpec) {
  auto make_children = [] {
    std::vector<std::unique_ptr<stream::ExampleStream>> children;
    children.push_back(
        std::make_unique<stream::VectorSource>("a", PosExamples()));
    children.push_back(
        std::make_unique<stream::VectorSource>("b", NegExamples()));
    return children;
  };
  EXPECT_FALSE(stream::Mix::Create({}, {}, 1).ok());
  EXPECT_FALSE(stream::Mix::Create(make_children(), {1.0}, 1).ok());
  EXPECT_FALSE(stream::Mix::Create(make_children(), {1.0, 0.0}, 1).ok());
  EXPECT_FALSE(stream::Mix::Create(make_children(), {1.0, -2.0}, 1).ok());
  EXPECT_TRUE(stream::Mix::Create(make_children(), {1.0, 3.0}, 1).ok());
}

TEST(MixTest, DeterministicAndRoughlyProportional) {
  auto build = [] {
    std::vector<std::unique_ptr<stream::ExampleStream>> children;
    children.push_back(
        std::make_unique<stream::VectorSource>("pos", PosExamples()));
    children.push_back(
        std::make_unique<stream::VectorSource>("neg", NegExamples()));
    auto mix = stream::Mix::Create(std::move(children), {3.0, 1.0}, 99);
    EXPECT_TRUE(mix.ok());
    return std::move(mix).value();
  };
  auto a = build();
  auto b = build();
  int64_t pos = 0;
  const int64_t draws = 3000;
  for (int64_t i = 0; i < draws; ++i) {
    auto ea = a->Next();
    auto eb = b->Next();
    ASSERT_TRUE(ea.ok());
    ASSERT_TRUE(eb.ok());
    ASSERT_EQ(ea.value().text, eb.value().text);  // same seed, same sequence
    pos += ea.value().label;
  }
  // Weight 3:1 → ~75% positive; generous band to stay noise-proof.
  EXPECT_GT(pos, draws * 0.65);
  EXPECT_LT(pos, draws * 0.85);
}

// -------------------------------------------------------------- shuffle --

TEST(ShuffleBufferTest, DeterministicPermutationOfInner) {
  auto build = [](uint64_t seed) {
    return stream::ShuffleBuffer(
        std::make_unique<stream::VectorSource>("v", PosExamples()), 4, seed);
  };
  auto a = build(7);
  auto b = build(7);
  auto c = build(8);
  bool c_diverged = false;
  for (int i = 0; i < 40; ++i) {
    auto ea = a.Next();
    auto eb = b.Next();
    auto ec = c.Next();
    ASSERT_TRUE(ea.ok());
    ASSERT_EQ(ea.value().text, eb.value().text);
    c_diverged = c_diverged || ec.value().text != ea.value().text;
  }
  EXPECT_TRUE(c_diverged);  // a different seed shuffles differently
}

TEST(ShuffleBufferTest, CapacityOneIsPassThrough) {
  stream::ShuffleBuffer buffer(
      std::make_unique<stream::VectorSource>("v", PosExamples()), 1, 7);
  const auto want = PosExamples();
  for (size_t i = 0; i < 2 * want.size(); ++i) {
    auto e = buffer.Next();
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e.value().text, want[i % want.size()].text);
  }
}

// -------------------------------------------------------------- augment --

TEST(AugmentStageTest, DeterministicPerDrawAndReplayable) {
  auto build = [] {
    return stream::AugmentStage(
        std::make_unique<stream::VectorSource>("v", PosExamples()),
        DuplicateToken, /*seed=*/33);
  };
  auto a = build();
  auto b = build();
  std::vector<std::string> first_pass;
  const size_t n = PosExamples().size();
  for (size_t i = 0; i < 2 * n; ++i) {
    auto ea = a.Next();
    auto eb = b.Next();
    ASSERT_TRUE(ea.ok());
    ASSERT_EQ(ea.value().text, eb.value().text);  // same seed, same augments
    EXPECT_EQ(ea.value().label, PosExamples()[i % n].label);
    if (i < n) {
      first_pass.push_back(ea.value().text);
    } else {
      // Second pass over the same source example draws a fresh augmentation
      // (draw-counter-keyed RNG), not a repeat of pass one — SOTASTREAM's
      // on-the-fly property. At least one of the six must differ.
      if (ea.value().text != first_pass[i % n]) return;
    }
  }
  FAIL() << "second pass repeated every first-pass augmentation";
}

// ----------------------------------------------------- capture / replay --

TEST(RestoreByReplayTest, ResumesExactSequence) {
  auto full = MixOfTwoStream();
  std::vector<std::string> expected;
  for (int i = 0; i < 30; ++i) {
    auto e = full->Next();
    ASSERT_TRUE(e.ok());
    if (i >= 12) expected.push_back(e.value().text);
  }

  auto replayed = MixOfTwoStream();
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(replayed->Next().ok());
  const stream::StreamState at12 = stream::CaptureState(*replayed);

  auto resumed = MixOfTwoStream();  // fresh pipeline, same spec
  ASSERT_TRUE(stream::RestoreByReplay(*resumed, at12).ok());
  EXPECT_EQ(stream::CaptureState(*resumed), at12);
  for (const auto& want : expected) {
    auto e = resumed->Next();
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e.value().text, want);
  }
}

TEST(RestoreByReplayTest, RejectsSpecDriftAndUsedPipelines) {
  auto original = MixOfTwoStream();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(original->Next().ok());
  const stream::StreamState target = stream::CaptureState(*original);

  // Different shuffle capacity = different spec: the replayed counters
  // cannot line up, and the mismatch must be an error, not a silent resume
  // of a different stream.
  std::vector<std::unique_ptr<stream::ExampleStream>> children;
  children.push_back(
      std::make_unique<stream::VectorSource>("pos", PosExamples()));
  children.push_back(
      std::make_unique<stream::VectorSource>("neg", NegExamples()));
  auto mix = stream::Mix::Create(std::move(children), {1.0, 1.0}, 21);
  ASSERT_TRUE(mix.ok());
  stream::ShuffleBuffer drifted(std::move(mix).value(), /*capacity=*/3, 22);
  EXPECT_FALSE(stream::RestoreByReplay(drifted, target).ok());

  // A pipeline that already drew past the target cannot rewind.
  auto used = MixOfTwoStream();
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(used->Next().ok());
  EXPECT_FALSE(stream::RestoreByReplay(*used, target).ok());

  // A state with no root entry is rejected outright.
  stream::StreamState empty;
  auto fresh = MixOfTwoStream();
  EXPECT_FALSE(stream::RestoreByReplay(*fresh, empty).ok());
}

// ----------------------------------------------- trainer: thread counts --

core::TrainResult RunStreamFinetune(int threads, bool prefetch,
                                    int64_t max_steps = 9,
                                    const std::string& checkpoint = "",
                                    const std::string& resume = "") {
  ThreadGuard guard(threads);
  Rng rng(7);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::FinetuneOptions options;
  options.batch_size = 4;
  options.aug_mode = core::AugMode::kReplace;
  options.seed = 5;
  options.pipeline.prefetch = prefetch;
  options.pipeline.streaming.source = MixOfTwoStream();
  options.pipeline.streaming.max_steps = max_steps;
  options.pipeline.streaming.valid_every = 3;
  options.pipeline.streaming.checkpoint_path = checkpoint;
  options.pipeline.streaming.resume_from = resume;
  core::FinetuneTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  return trainer.Train(TinyTask(), DuplicateToken);
}

core::TrainResult RunStreamRotom(int threads, bool prefetch,
                                 int64_t max_steps = 8,
                                 const std::string& checkpoint = "",
                                 const std::string& resume = "") {
  ThreadGuard guard(threads);
  Rng rng(11);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::RotomOptions options;
  options.batch_size = 6;
  options.augments_per_example = 2;
  options.seed = 5;
  options.pipeline.prefetch = prefetch;
  options.pipeline.streaming.source = MixOfTwoStream();
  options.pipeline.streaming.max_steps = max_steps;
  options.pipeline.streaming.valid_every = 4;
  options.pipeline.streaming.checkpoint_path = checkpoint;
  options.pipeline.streaming.resume_from = resume;
  core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  return trainer.Train(TinyTask(), [](const std::string& s, Rng& r) {
    return std::vector<std::string>{DuplicateToken(s, r),
                                    DuplicateToken(s, r)};
  });
}

void ExpectIdentical(const core::TrainResult& reference,
                     const core::TrainResult& candidate, const char* label) {
  EXPECT_EQ(reference.steps, candidate.steps) << label;
  ASSERT_EQ(reference.loss_history.size(), candidate.loss_history.size())
      << label;
  for (size_t i = 0; i < reference.loss_history.size(); ++i) {
    // Bit-identical, not approximately equal: prefetch depth and thread
    // count must not touch the trajectory at all.
    ASSERT_EQ(reference.loss_history[i], candidate.loss_history[i])
        << label << " diverged at step " << i;
  }
  EXPECT_EQ(reference.best_valid_metric, candidate.best_valid_metric) << label;
}

TEST(StreamingTrainerTest, FinetuneBatchSequenceIsThreadCountInvariant) {
  const auto reference = RunStreamFinetune(/*threads=*/1, /*prefetch=*/false);
  EXPECT_EQ(reference.steps, 9);
  ExpectIdentical(reference, RunStreamFinetune(1, true), "prefetch/1t");
  ExpectIdentical(reference, RunStreamFinetune(4, true), "prefetch/4t");
}

TEST(StreamingTrainerTest, RotomBatchSequenceIsThreadCountInvariant) {
  const auto reference = RunStreamRotom(/*threads=*/1, /*prefetch=*/false);
  EXPECT_EQ(reference.steps, 8);
  ASSERT_FALSE(reference.loss_history.empty());
  ExpectIdentical(reference, RunStreamRotom(1, true), "prefetch/1t");
  ExpectIdentical(reference, RunStreamRotom(4, true), "prefetch/4t");
}

// -------------------------------------------- trainer: kill-and-resume --

TEST(StreamingTrainerTest, FinetuneResumeReproducesUninterruptedRun) {
  const auto uninterrupted = RunStreamFinetune(2, true, /*max_steps=*/9);

  // "Kill" after 3 steps: the round boundary at step 3 wrote a checkpoint.
  const std::string ckpt = TempPath("finetune_resume.ckpt");
  const auto before = RunStreamFinetune(2, true, /*max_steps=*/3, ckpt);
  ASSERT_EQ(before.steps, 3);
  // Resume with a fresh model and a freshly built same-spec pipeline.
  const auto after = RunStreamFinetune(2, true, /*max_steps=*/9, "", ckpt);
  ASSERT_EQ(after.steps, 6);

  std::vector<float> stitched = before.loss_history;
  stitched.insert(stitched.end(), after.loss_history.begin(),
                  after.loss_history.end());
  ASSERT_EQ(stitched.size(), uninterrupted.loss_history.size());
  for (size_t i = 0; i < stitched.size(); ++i) {
    ASSERT_EQ(stitched[i], uninterrupted.loss_history[i])
        << "resume diverged at step " << i;
  }
  EXPECT_EQ(after.best_valid_metric, uninterrupted.best_valid_metric);
}

TEST(StreamingTrainerTest, RotomResumeReproducesUninterruptedRun) {
  const auto uninterrupted = RunStreamRotom(2, true, /*max_steps=*/8);

  const std::string ckpt = TempPath("rotom_resume.ckpt");
  const auto before = RunStreamRotom(2, true, /*max_steps=*/4, ckpt);
  ASSERT_EQ(before.steps, 4);
  const auto after = RunStreamRotom(2, true, /*max_steps=*/8, "", ckpt);
  ASSERT_EQ(after.steps, 4);

  std::vector<float> stitched = before.loss_history;
  stitched.insert(stitched.end(), after.loss_history.begin(),
                  after.loss_history.end());
  ASSERT_EQ(stitched.size(), uninterrupted.loss_history.size());
  for (size_t i = 0; i < stitched.size(); ++i) {
    ASSERT_EQ(stitched[i], uninterrupted.loss_history[i])
        << "resume diverged at step " << i;
  }
  EXPECT_EQ(after.best_valid_metric, uninterrupted.best_valid_metric);
}

// ----------------------------------------------------------- DataSource --

TEST(DataSourceTest, ValidatesSpecs) {
  EXPECT_FALSE(data::ValidateSource(data::DataSource{}).ok());

  data::DataSource::FileSpec missing;
  missing.path = "/nonexistent/data.csv";
  EXPECT_FALSE(data::ValidateSource(data::DataSource::File(missing)).ok());

  EXPECT_FALSE(data::ValidateSource(data::DataSource::Mixture({})).ok());

  const std::string path = TempPath("source_ok.csv");
  WriteFile(path, "text,label\nhello,pos\nbye,neg\n");
  data::DataSource::FileSpec good;
  good.path = path;
  data::DataSource::FileSpec bad_weight = good;
  bad_weight.weight = 0.0;
  EXPECT_FALSE(
      data::ValidateSource(data::DataSource::Mixture({good, bad_weight}))
          .ok());
  EXPECT_TRUE(
      data::ValidateSource(data::DataSource::Mixture({good, good})).ok());

  // Stream without a step budget.
  EXPECT_FALSE(
      data::ValidateSource(data::DataSource::Stream({good}, {})).ok());
  data::DataSource::StreamSpec stream_spec;
  stream_spec.max_steps = 10;
  EXPECT_TRUE(
      data::ValidateSource(data::DataSource::Stream({good}, stream_spec))
          .ok());
}

TEST(DataSourceTest, OpensFileWithSplits) {
  const std::string path = TempPath("source_file.csv");
  std::string content = "text,label\n";
  for (int i = 0; i < 10; ++i) {
    content += "example number " + std::to_string(i) + "," +
               (i % 2 == 0 ? "even" : "odd") + "\n";
  }
  WriteFile(path, content);
  data::DataSource::FileSpec file;
  file.path = path;
  data::DataSource::SplitSpec split;
  split.train_size = 4;
  split.test_size = 3;
  split.name = "evens";
  auto opened = data::OpenSource(data::DataSource::File(file, split));
  ASSERT_TRUE(opened.ok());
  const data::TaskDataset& ds = opened.value().dataset;
  EXPECT_EQ(ds.name, "evens");
  EXPECT_EQ(ds.num_classes, 2);
  EXPECT_EQ(ds.train.size(), 4u);
  EXPECT_EQ(ds.test.size(), 3u);
  EXPECT_EQ(ds.valid.size(), ds.train.size());
  EXPECT_EQ(ds.unlabeled.size(), 3u);  // 10 - 4 - 3
  ASSERT_EQ(opened.value().label_names.size(), 2u);
  EXPECT_EQ(opened.value().label_names[0], "even");
  EXPECT_EQ(opened.value().stream, nullptr);
}

TEST(DataSourceTest, OpensFileStreamWithSharedLabelSpace) {
  const std::string even_path = TempPath("source_stream_even.csv");
  const std::string odd_path = TempPath("source_stream_odd.csv");
  WriteFile(even_path,
            "text,label\neven one,even\neven two,even\nodd intruder,odd\n");
  WriteFile(odd_path, "text,label\nodd one,odd\nodd two,odd\n");
  data::DataSource::FileSpec even_file, odd_file;
  even_file.path = even_path;
  odd_file.path = odd_path;
  odd_file.weight = 2.0;
  data::DataSource::StreamSpec stream_spec;
  stream_spec.max_steps = 20;
  auto opened = data::OpenSource(
      data::DataSource::Stream({even_file, odd_file}, stream_spec));
  ASSERT_TRUE(opened.ok());
  ASSERT_NE(opened.value().stream, nullptr);
  EXPECT_EQ(opened.value().dataset.num_classes, 2);
  EXPECT_FALSE(opened.value().dataset.valid.empty());
  ASSERT_EQ(opened.value().label_names.size(), 2u);
  // "even" enumerated first (file order), and the stream's draws must map
  // labels through the same enumeration as the materialized examples.
  EXPECT_EQ(opened.value().label_names[0], "even");
  for (int i = 0; i < 30; ++i) {
    auto e = opened.value().stream->Next();
    ASSERT_TRUE(e.ok());
    const bool is_even = e.value().text.rfind("even", 0) == 0;
    EXPECT_EQ(e.value().label, is_even ? 0 : 1) << e.value().text;
  }
}

TEST(ApiTrainSpecTest, RejectsAmbiguousOrMissingSource) {
  api::TrainSpec both;
  both.dataset = TinyTask();
  both.source = data::DataSource::Inline(TinyTask());
  auto report = api::Train(both);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("not both"), std::string::npos);

  api::TrainSpec neither;
  EXPECT_FALSE(api::Train(neither).ok());
}

}  // namespace
}  // namespace rotom
