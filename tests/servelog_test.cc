// Tests for the serve flight recorder (obs/servelog.h) wired through the
// serving stack: manifest provenance, dense strictly-increasing request
// ids, 1-in-N sampling, shed/swap/window events, the per-tenant SLO
// accounting they carry, the ROTOM_SERVELOG_DIR fallback, and the
// ROTOM_METRICS=off contract (the recorder and the serving path are
// independent of the metrics switch). The TSan sweep in scripts/check.sh
// re-runs this binary: concurrent clients, the batching worker, and the
// recorder's lock-free append path must stay race-free together.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/servelog.h"
#include "rotom/api.h"

namespace rotom {
namespace {

using serve::BatchingServer;
using serve::InferenceSession;
using serve::ModelRegistry;
using serve::Prediction;
using serve::Snapshot;
using serve::TenantServer;

class ObsEnabledGuard {
 public:
  ObsEnabledGuard() : enabled_(obs::Enabled()) {}
  ~ObsEnabledGuard() { obs::SetEnabled(enabled_); }

 private:
  bool enabled_;
};

Snapshot MakeSnapshot(uint64_t seed = 1) {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w : {"the", "movie", "was", "great", "terrible", "plot"})
    vocab->AddToken(w);
  models::ClassifierConfig config;
  config.num_classes = 3;
  config.max_len = 12;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  Rng rng(seed);
  models::TransformerClassifier model(config, vocab, rng);
  model.SetTraining(false);
  return Snapshot::FromModel(model);
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

bool HasField(const std::string& line, const std::string& key) {
  return line.find("\"" + key + "\"") != std::string::npos;
}

bool IsEvent(const std::string& line, const std::string& event) {
  return line.find("\"event\": \"" + event + "\"") != std::string::npos;
}

// Integer field value out of a flat JSONL line; -1 when absent.
int64_t IntField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atoll(line.c_str() + pos + needle.size());
}

TEST(ServeLogTest, BatchingServerWritesManifestAndDenseMonotonicIds) {
  const Snapshot snapshot = MakeSnapshot();
  auto session = InferenceSession::Create(snapshot);
  ASSERT_TRUE(session.ok()) << session.status().message();

  BatchingServer::Options options;
  options.max_batch = 4;
  options.max_delay_us = 200;
  options.servelog_dir = ::testing::TempDir();
  options.servelog_sample = 1;  // every accepted request gets an event
  constexpr int kRequests = 24;
  std::string path;
  {
    BatchingServer server(session.value().get(), options);
    ASSERT_NE(server.servelog(), nullptr);
    path = server.servelog()->path();
    for (int i = 0; i < kRequests; ++i) {
      ASSERT_TRUE(server.Predict("the movie was great").ok());
    }
    server.Shutdown();
  }

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_FALSE(lines.empty());
  // Crash-safety shape: whole lines only (each event is one write(2)).
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }

  // The manifest leads and records the provenance + serving shape.
  const std::string& manifest = lines.front();
  ASSERT_TRUE(IsEvent(manifest, "manifest")) << manifest;
  EXPECT_NE(manifest.find(obs::kServeLogSchema), std::string::npos);
  EXPECT_TRUE(HasField(manifest, "simd_flavor"));
  EXPECT_TRUE(HasField(manifest, "rotom_simd"));
  EXPECT_NE(manifest.find("\"server\": \"batching\""), std::string::npos);
  EXPECT_NE(manifest.find("\"precision\": \"f32\""), std::string::npos);
  EXPECT_EQ(IntField(manifest, "sample"), 1);
  EXPECT_EQ(IntField(manifest, "max_batch"), 4);

  // Request ids are dense (1..N, accepted submissions only) and, because
  // the BatchingServer queue is FIFO, strictly increasing in file order.
  int64_t expected_id = 0;
  for (const std::string& line : lines) {
    if (!IsEvent(line, "request")) continue;
    ++expected_id;
    EXPECT_EQ(IntField(line, "id"), expected_id) << line;
    const int64_t queue_us = IntField(line, "queue_us");
    const int64_t total_us = IntField(line, "total_us");
    EXPECT_GE(queue_us, 0);
    EXPECT_GE(IntField(line, "compute_us"), 0);
    EXPECT_GE(total_us, queue_us) << line;
    EXPECT_GE(IntField(line, "batch_size"), 1);
    EXPECT_GE(IntField(line, "label"), 0);
    // The single-server global stream carries no tenant field.
    EXPECT_FALSE(HasField(line, "tenant")) << line;
  }
  EXPECT_EQ(expected_id, kRequests);
  std::remove(path.c_str());
}

TEST(ServeLogTest, SamplingKeepsOneInN) {
  auto session = InferenceSession::Create(MakeSnapshot());
  ASSERT_TRUE(session.ok());
  BatchingServer::Options options;
  options.max_batch = 4;
  options.max_delay_us = 200;
  options.servelog_dir = ::testing::TempDir();
  options.servelog_sample = 4;
  std::string path;
  {
    BatchingServer server(session.value().get(), options);
    ASSERT_NE(server.servelog(), nullptr);
    path = server.servelog()->path();
    for (int i = 0; i < 16; ++i)
      ASSERT_TRUE(server.Predict("terrible plot").ok());
  }
  std::vector<int64_t> ids;
  for (const std::string& line : ReadLines(path)) {
    if (IsEvent(line, "request")) ids.push_back(IntField(line, "id"));
  }
  // (id - 1) % 4 == 0 keeps 1, 5, 9, 13 out of 16.
  EXPECT_EQ(ids, (std::vector<int64_t>{1, 5, 9, 13}));
  std::remove(path.c_str());
}

TEST(ServeLogTest, EnvDirFallbackOpensTheRecorder) {
  ::setenv("ROTOM_SERVELOG_DIR", ::testing::TempDir().c_str(), 1);
  auto session = InferenceSession::Create(MakeSnapshot());
  ASSERT_TRUE(session.ok());
  std::string path;
  {
    BatchingServer server(session.value().get());  // no servelog options
    ASSERT_NE(server.servelog(), nullptr);
    path = server.servelog()->path();
    EXPECT_EQ(path.rfind(::testing::TempDir(), 0), 0u) << path;
    ASSERT_TRUE(server.Predict("the movie was great").ok());
  }
  ::unsetenv("ROTOM_SERVELOG_DIR");
  EXPECT_FALSE(ReadLines(path).empty());
  std::remove(path.c_str());
}

TEST(ServeLogTest, TenantServerLogsSloWindowsShedsAndSwaps) {
  const Snapshot v1 = MakeSnapshot(1);
  const Snapshot v2 = MakeSnapshot(2);

  obs::ServeLogOptions log_options;
  log_options.dir = ::testing::TempDir();
  log_options.tag = "servelog_test_tenant";
  log_options.sample = 1;
  auto servelog = obs::ServeLog::Open(log_options);
  ASSERT_NE(servelog, nullptr);
  const std::string path = servelog->path();

  ModelRegistry::Options registry_options;
  registry_options.servelog = servelog;
  ModelRegistry registry(registry_options);
  ASSERT_TRUE(registry.Publish("t0", v1).ok());
  ASSERT_TRUE(registry.Publish("t0", v2).ok());

  // Window 1: slo_latency_us = 0 makes every completed request a violation
  // (any measurable latency is > 0), so the error budget goes negative.
  {
    TenantServer::Options options;
    options.max_batch = 4;
    options.max_delay_us = 200;
    options.servelog = servelog;
    options.slo_latency_us = 0;
    options.slo_target = 0.99;
    options.slo_window = 4;
    TenantServer server(&registry, {"t0"}, options);
    for (int i = 0; i < 8; ++i)
      ASSERT_TRUE(server.Predict("t0", "the movie was great").ok());
    server.Shutdown();
  }
  ASSERT_TRUE(registry.Swap("t0", 2).ok());

  // Second server on the same recorder: deterministic shedding (the worker
  // can close no batch before Shutdown, so exactly queue_capacity requests
  // are admitted and the rest shed).
  {
    TenantServer::Options options;
    options.max_batch = 64;
    options.max_delay_us = 10'000'000;
    options.queue_capacity = 2;
    options.servelog = servelog;
    TenantServer server(&registry, {"t0"}, options);
    std::vector<std::future<StatusOr<Prediction>>> futures;
    for (int i = 0; i < 8; ++i)
      futures.push_back(server.Submit("t0", "terrible plot"));
    server.Shutdown();
    for (auto& f : futures) f.get();
  }
  servelog.reset();  // close the fd before reading

  int windows = 0, sheds = 0, swaps = 0;
  int64_t last_id = 0;
  int64_t last_violations = 0;
  for (const std::string& line : ReadLines(path)) {
    if (IsEvent(line, "request")) {
      // One dense id sequence per server; both tenants' streams restart at
      // 1 when the second server opens, so monotonicity holds per manifest
      // scope. Every request here belongs to tenant t0.
      EXPECT_NE(line.find("\"tenant\": \"t0\""), std::string::npos) << line;
      const int64_t id = IntField(line, "id");
      if (id == 1) last_id = 0;  // second server's stream begins
      EXPECT_EQ(id, last_id + 1) << line;
      last_id = id;
    } else if (IsEvent(line, "window")) {
      ++windows;
      EXPECT_NE(line.find("\"tenant\": \"t0\""), std::string::npos);
      EXPECT_EQ(IntField(line, "completed"), 4);
      const int64_t violations = IntField(line, "slo_violations");
      EXPECT_GT(violations, last_violations) << line;  // cumulative
      last_violations = violations;
      // allowed = (1 - 0.99) * completed rounds to 0, so the budget is
      // violations deep in the red.
      EXPECT_EQ(IntField(line, "budget_remaining"), -violations) << line;
      EXPECT_GT(IntField(line, "p99_us"), 0);
    } else if (IsEvent(line, "shed")) {
      ++sheds;
      EXPECT_NE(line.find("\"tenant\": \"t0\""), std::string::npos);
      EXPECT_EQ(IntField(line, "queue_depth"), 2) << line;
    } else if (IsEvent(line, "swap")) {
      ++swaps;
      EXPECT_NE(line.find("\"model\": \"t0\""), std::string::npos);
      EXPECT_EQ(IntField(line, "version"), 2);
    }
  }
  EXPECT_EQ(windows, 2);  // 8 completions / slo_window 4
  EXPECT_EQ(sheds, 6);    // 8 offered - queue_capacity 2
  EXPECT_EQ(swaps, 1);
  std::remove(path.c_str());
}

TEST(ServeLogTest, MetricsOffKeepsServingAndRecorderWorking) {
  ObsEnabledGuard guard;
  obs::SetEnabled(false);

  const Snapshot snapshot = MakeSnapshot();
  auto session = InferenceSession::Create(snapshot);
  ASSERT_TRUE(session.ok());
  BatchingServer::Options options;
  options.max_batch = 4;
  options.max_delay_us = 200;
  options.servelog_dir = ::testing::TempDir();
  options.servelog_sample = 1;
  options.obs_http.enabled = true;
  std::string path;
  {
    BatchingServer server(session.value().get(), options);
    ASSERT_NE(server.servelog(), nullptr);
    path = server.servelog()->path();
    for (int i = 0; i < 8; ++i) {
      auto result = server.Predict("the movie was great");
      ASSERT_TRUE(result.ok()) << result.status().message();
      EXPECT_EQ(result.value().probs.size(), 3u);
    }
    // Internal stats counters are mutex-guarded members, not obs metrics,
    // so they keep counting with the switch off.
    EXPECT_EQ(server.GetStats().requests, 8u);
  }
  // The recorder is independent of the metrics switch: events still land.
  int requests = 0;
  for (const std::string& line : ReadLines(path)) {
    if (IsEvent(line, "request")) ++requests;
  }
  EXPECT_EQ(requests, 8);
#ifndef ROTOM_METRICS_DISABLED
  EXPECT_TRUE(obs::Snapshot().metrics.empty());
#endif
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rotom
