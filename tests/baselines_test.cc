#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "baselines/deepmatcher.h"
#include "baselines/nlp_da.h"
#include "baselines/raha_like.h"
#include "data/edt_gen.h"
#include "data/em_gen.h"
#include "data/textcls_gen.h"

namespace rotom {
namespace {

TEST(BrunnerSerializeTest, StripsMarkersKeepsSep) {
  const std::string pair =
      "[COL] name [VAL] google llc [SEP] [COL] name [VAL] alphabet inc";
  const std::string out = baselines::BrunnerSerialize(pair);
  EXPECT_EQ(out, "name google llc [SEP] name alphabet inc");
}

TEST(BrunnerVariantTest, TransformsAllSplits) {
  data::EmOptions options;
  options.budget = 20;
  options.test_size = 10;
  options.unlabeled_size = 10;
  auto ds = data::MakeEmDataset("dblp_acm", options);
  auto variant = baselines::BrunnerVariant(ds);
  EXPECT_EQ(variant.name, "dblp_acm_brunner");
  EXPECT_TRUE(variant.is_pair_task);
  for (const auto& e : variant.train) {
    EXPECT_EQ(e.text.find("[COL]"), std::string::npos);
    EXPECT_NE(e.text.find("[SEP]"), std::string::npos);
  }
  EXPECT_EQ(variant.train.size(), ds.train.size());
}

TEST(DeepMatcherTest, ForwardShapesAndPredict) {
  Rng rng(1);
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w : {"google", "llc", "alphabet", "inc", "name"})
    vocab->AddToken(w);
  baselines::DeepMatcherNet::Config config;
  config.embed_dim = 8;
  config.hidden_dim = 8;
  baselines::DeepMatcherNet net(config, vocab, rng);
  std::vector<std::string> pairs = {
      "[COL] name [VAL] google llc [SEP] [COL] name [VAL] google llc",
      "[COL] name [VAL] google llc [SEP] [COL] name [VAL] alphabet inc"};
  Variable logits = net.ForwardLogits(pairs);
  EXPECT_EQ(logits.value().shape(), (std::vector<int64_t>{2, 2}));
  auto preds = net.Predict(pairs);
  EXPECT_EQ(preds.size(), 2u);
}

TEST(DeepMatcherTest, LearnsEasyEmDataset) {
  data::EmOptions options;
  options.budget = 200;
  options.test_size = 100;
  options.unlabeled_size = 100;
  options.seed = 2;
  auto ds = data::MakeEmDataset("dblp_acm", options);
  const double f1 = baselines::TrainAndEvalDeepMatcher(ds, /*seed=*/1);
  // Should beat the trivial all-positive baseline's F1 (~40 at 25% pos).
  EXPECT_GT(f1, 45.0);
}

TEST(RahaLikeTest, FeatureVectorShape) {
  baselines::RahaLikeDetector detector;
  auto f = detector.Features("[COL] zip [VAL] 12345");
  EXPECT_EQ(f.size(),
            static_cast<size_t>(baselines::RahaLikeDetector::kNumFeatures));
}

TEST(RahaLikeTest, MissingValueFeatureFires) {
  baselines::RahaLikeDetector detector;
  EXPECT_EQ(detector.Features("[COL] ibu [VAL] n/a")[4], 1.0);
  EXPECT_EQ(detector.Features("[COL] ibu [VAL] 60")[4], 0.0);
}

class RahaLikeDatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RahaLikeDatasetTest, BeatsChanceOnEdt) {
  data::EdtOptions options;
  options.budget = 120;
  options.seed = 3;
  auto ds = data::MakeEdtDataset(GetParam(), options);
  baselines::RahaLikeDetector detector;
  detector.Fit(ds, /*seed=*/1);
  const double f1 = detector.EvaluateF1(ds);
  // The natural error rate is ~20%; random guessing yields F1 ~ 0.2-0.3.
  EXPECT_GT(f1, 30.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllEdt, RahaLikeDatasetTest,
                         ::testing::ValuesIn(data::EdtDatasetNames()));

TEST(NlpBaselineTest, NamesAreStable) {
  EXPECT_STREQ(baselines::NlpBaselineName(baselines::NlpBaseline::kHuLearnedDa),
               "+Learned DA");
  EXPECT_STREQ(
      baselines::NlpBaselineName(baselines::NlpBaseline::kKumarCondGen),
      "+CG w. BART-style");
}

TEST(NlpBaselineTest, AllVariantsRunOnTinyTask) {
  data::TextClsOptions ds_options;
  ds_options.train_size = 24;
  ds_options.test_size = 40;
  ds_options.unlabeled_size = 60;
  ds_options.seed = 4;
  auto ds = data::MakeTextClsDataset("sst2", ds_options);

  std::vector<std::vector<std::string>> docs;
  for (const auto& e : ds.train) docs.push_back(text::Tokenize(e.text));
  for (const auto& t : ds.unlabeled) docs.push_back(text::Tokenize(t));
  auto vocab = std::make_shared<text::Vocabulary>(
      text::Vocabulary::BuildFromCorpus(docs));

  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 16;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;

  baselines::NlpBaselineOptions options;
  options.epochs = 2;
  options.batch_size = 8;
  options.seed = 5;
  for (auto kind :
       {baselines::NlpBaseline::kHuLearnedDa,
        baselines::NlpBaseline::kHuWeighting,
        baselines::NlpBaseline::kKumarCondGen,
        baselines::NlpBaseline::kKumarMlmResample}) {
    const double acc = baselines::TrainAndEvalNlpBaseline(
        kind, ds, config, vocab, nullptr, options);
    EXPECT_GE(acc, 0.0) << baselines::NlpBaselineName(kind);
    EXPECT_LE(acc, 100.0) << baselines::NlpBaselineName(kind);
  }
}

}  // namespace
}  // namespace rotom
