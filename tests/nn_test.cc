#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "nn/transformer.h"

namespace rotom {
namespace {

using testing_support::ExpectGradientsClose;

nn::TransformerConfig SmallConfig() {
  nn::TransformerConfig config;
  config.vocab_size = 20;
  config.dim = 8;
  config.num_heads = 2;
  config.num_layers = 2;
  config.ffn_dim = 16;
  config.max_seq_len = 10;
  config.dropout = 0.0f;  // deterministic for tests
  return config;
}

TEST(ModuleTest, ParameterCollection) {
  Rng rng(1);
  nn::Linear lin(4, 3, rng);
  auto params = lin.Parameters();
  ASSERT_EQ(params.size(), 2u);           // weight + bias
  EXPECT_EQ(lin.NumParameters(), 4 * 3 + 3);
}

TEST(ModuleTest, NoBiasLinear) {
  Rng rng(1);
  nn::Linear lin(4, 3, rng, /*with_bias=*/false);
  EXPECT_EQ(lin.NumParameters(), 12);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(2);
  nn::Linear lin(2, 2, rng);
  Variable x(Tensor::Ones({3, 2}), false);
  ops::Sum(lin.Forward(x)).Backward();
  for (const auto& p : lin.Parameters()) EXPECT_TRUE(p.has_grad());
  lin.ZeroGrad();
  for (const auto& p : lin.Parameters()) {
    EXPECT_EQ(p.grad().AbsMax(), 0.0f);
  }
}

TEST(ModuleTest, StateDictRoundTrip) {
  Rng rng(3);
  nn::FeedForward a(4, 8, rng);
  nn::FeedForward b(4, 8, rng);
  // a and b differ after independent init.
  auto dict = a.StateDict();
  ASSERT_EQ(dict.size(), 4u);  // two linears, weight+bias each
  b.LoadStateDict(dict);
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(pa[i].value().Equals(pb[i].value()));
}

TEST(ModuleTest, StateDictNamesAreDotted) {
  Rng rng(4);
  nn::FeedForward ff(4, 8, rng);
  auto dict = ff.StateDict("ffn.");
  EXPECT_EQ(dict[0].first, "ffn.in.weight");
  EXPECT_EQ(dict[3].first, "ffn.out.bias");
}

TEST(ModuleTest, CopyParametersFrom) {
  Rng rng(5);
  nn::Linear a(3, 3, rng);
  nn::Linear b(3, 3, rng);
  b.CopyParametersFrom(a);
  EXPECT_TRUE(a.Parameters()[0].value().Equals(b.Parameters()[0].value()));
}

TEST(ModuleTest, SetTrainingPropagates) {
  Rng rng(6);
  nn::TransformerEncoder enc(SmallConfig(), rng);
  enc.SetTraining(false);
  EXPECT_FALSE(enc.training());
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(7);
  nn::Linear lin(2, 2, rng);
  auto params = lin.Parameters();
  Tensor& w = params[0].value();
  Tensor& b = params[1].value();
  w = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  params[0].value().CopyFrom(w);
  b.CopyFrom(Tensor::FromVector({2}, {0.5f, -0.5f}));
  Variable x(Tensor::FromVector({1, 2}, {1, 1}), false);
  Tensor y = lin.Forward(x).value();
  EXPECT_NEAR(y[0], 1 + 3 + 0.5f, 1e-5f);
  EXPECT_NEAR(y[1], 2 + 4 - 0.5f, 1e-5f);
}

TEST(LinearTest, Handles3DInput) {
  Rng rng(8);
  nn::Linear lin(4, 6, rng);
  Variable x(Tensor::Ones({2, 3, 4}), false);
  Variable y = lin.Forward(x);
  EXPECT_EQ(y.value().shape(), (std::vector<int64_t>{2, 3, 6}));
}

TEST(LinearTest, GradCheck) {
  Rng rng(9);
  nn::Linear lin(3, 2, rng);
  Variable x(Tensor::Randn({4, 3}, rng, 0.5f), true);
  std::vector<Variable> leaves = lin.Parameters();
  leaves.push_back(x);
  ExpectGradientsClose(leaves, [&] {
    Variable y = lin.Forward(x);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(EmbeddingLayerTest, LookupShape) {
  Rng rng(10);
  nn::EmbeddingLayer emb(10, 4, rng);
  Variable y = emb.Forward({1, 2, 3, 1});
  EXPECT_EQ(y.value().shape(), (std::vector<int64_t>{4, 4}));
  // Repeated ids give identical rows.
  for (int64_t j = 0; j < 4; ++j)
    EXPECT_EQ(y.value().at({0, j}), y.value().at({3, j}));
}

TEST(LayerNormLayerTest, NormalizesRows) {
  Rng rng(11);
  nn::LayerNormLayer ln(6);
  Variable x(Tensor::Randn({3, 6}, rng, 2.0f), false);
  Tensor y = ln.Forward(x).value();
  for (int64_t r = 0; r < 3; ++r) {
    double mu = 0.0, var = 0.0;
    for (int64_t j = 0; j < 6; ++j) mu += y.at({r, j});
    mu /= 6;
    for (int64_t j = 0; j < 6; ++j) {
      const double d = y.at({r, j}) - mu;
      var += d * d;
    }
    var /= 6;
    EXPECT_NEAR(mu, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(AttentionTest, MaskToBias) {
  Tensor mask = Tensor::FromVector({2, 3}, {1, 1, 0, 1, 0, 0});
  Tensor bias = nn::MaskToAttentionBias(mask);
  EXPECT_EQ(bias.at({0, 0}), 0.0f);
  EXPECT_EQ(bias.at({0, 2}), -1e9f);
  EXPECT_EQ(bias.at({1, 1}), -1e9f);
}

TEST(AttentionTest, OutputShape) {
  Rng rng(12);
  nn::MultiHeadAttention mha(8, 2, 0.0f, rng);
  mha.SetTraining(false);
  Variable x(Tensor::Randn({2, 5, 8}, rng, 0.5f), false);
  Tensor bias({2, 5});
  Variable y = mha.Forward(x, x, bias, false, rng);
  EXPECT_EQ(y.value().shape(), (std::vector<int64_t>{2, 5, 8}));
}

TEST(AttentionTest, PaddingKeysIgnored) {
  // Changing a fully-masked key position must not change the output.
  Rng rng(13);
  nn::MultiHeadAttention mha(8, 2, 0.0f, rng);
  mha.SetTraining(false);
  Tensor base = Tensor::Randn({1, 4, 8}, rng, 0.5f);
  Tensor mask = Tensor::FromVector({1, 4}, {1, 1, 1, 0});
  Tensor bias = nn::MaskToAttentionBias(mask);

  Variable x1(base.Clone(), false);
  Variable y1 = mha.Forward(x1, x1, bias, false, rng);

  Tensor altered = base.Clone();
  for (int64_t j = 0; j < 8; ++j) altered.at({0, 3, j}) += 5.0f;
  Variable x2(altered, false);
  // Only keys/values from x2's padded position change; queries also change
  // at that position, so compare only non-padded output rows.
  Variable y2 = mha.Forward(x2, x2, bias, false, rng);
  for (int64_t t = 0; t < 3; ++t)
    for (int64_t j = 0; j < 8; ++j)
      EXPECT_NEAR(y1.value().at({0, t, j}), y2.value().at({0, t, j}), 1e-4f);
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  // With a causal mask, output at position t must not depend on inputs at
  // positions > t.
  Rng rng(14);
  nn::MultiHeadAttention mha(8, 2, 0.0f, rng);
  mha.SetTraining(false);
  Tensor base = Tensor::Randn({1, 4, 8}, rng, 0.5f);
  Tensor bias({1, 4});

  Variable x1(base.Clone(), false);
  Variable y1 = mha.Forward(x1, x1, bias, true, rng);

  Tensor altered = base.Clone();
  for (int64_t j = 0; j < 8; ++j) altered.at({0, 3, j}) += 3.0f;
  Variable x2(altered, false);
  Variable y2 = mha.Forward(x2, x2, bias, true, rng);
  for (int64_t t = 0; t < 3; ++t)
    for (int64_t j = 0; j < 8; ++j)
      EXPECT_NEAR(y1.value().at({0, t, j}), y2.value().at({0, t, j}), 1e-4f);
}

TEST(AttentionTest, GradFlowsToAllProjections) {
  Rng rng(15);
  nn::MultiHeadAttention mha(8, 2, 0.0f, rng);
  Variable x(Tensor::Randn({1, 3, 8}, rng, 0.5f), true);
  Tensor bias({1, 3});
  ops::Sum(mha.Forward(x, x, bias, false, rng)).Backward();
  for (const auto& p : mha.Parameters()) EXPECT_TRUE(p.has_grad());
  EXPECT_TRUE(x.has_grad());
}

TEST(TransformerTest, EncoderOutputShape) {
  Rng rng(16);
  nn::TransformerEncoder enc(SmallConfig(), rng);
  enc.SetTraining(false);
  std::vector<int64_t> ids{1, 2, 3, 4, 5, 6};  // batch 2, seq 3
  Tensor mask = Tensor::Ones({2, 3});
  Variable h = enc.Forward(ids, 2, 3, mask, rng);
  EXPECT_EQ(h.value().shape(), (std::vector<int64_t>{2, 3, 8}));
  Variable cls = enc.EncodeCls(ids, 2, 3, mask, rng);
  EXPECT_EQ(cls.value().shape(), (std::vector<int64_t>{2, 8}));
}

TEST(TransformerTest, EncoderDeterministicInEval) {
  Rng rng(17);
  nn::TransformerEncoder enc(SmallConfig(), rng);
  enc.SetTraining(false);
  std::vector<int64_t> ids{1, 2, 3, 4};
  Tensor mask = Tensor::Ones({1, 4});
  Rng r1(0), r2(0);
  Variable a = enc.Forward(ids, 1, 4, mask, r1);
  Variable b = enc.Forward(ids, 1, 4, mask, r2);
  EXPECT_TRUE(a.value().AllClose(b.value()));
}

TEST(TransformerTest, EncoderGradReachesEmbeddings) {
  Rng rng(18);
  nn::TransformerEncoder enc(SmallConfig(), rng);
  std::vector<int64_t> ids{1, 2, 3, 4};
  std::vector<int64_t> flags{0, 1, 1, 0};
  Tensor mask = Tensor::Ones({1, 4});
  ops::Sum(enc.Forward(ids, 1, 4, mask, rng, &flags)).Backward();
  int with_grad = 0;
  for (const auto& p : enc.Parameters())
    if (p.has_grad()) ++with_grad;
  EXPECT_EQ(with_grad, static_cast<int>(enc.Parameters().size()));
}

TEST(TransformerTest, FlagEmbeddingChangesOutput) {
  Rng rng(19);
  nn::TransformerEncoder enc(SmallConfig(), rng);
  enc.SetTraining(false);
  // Make the flag embedding's two rows clearly different so the flag stream
  // matters.
  for (auto& p : enc.Parameters()) {
    if (p.value().dim() == 2 && p.value().size(0) == 2 &&
        p.value().size(1) == SmallConfig().dim) {
      for (int64_t j = 0; j < SmallConfig().dim; ++j) {
        // Alternating signs: a constant vector would be cancelled by the
        // embedding LayerNorm's centering.
        p.value().at({0, j}) = 0.0f;
        p.value().at({1, j}) = j % 2 == 0 ? 1.0f : -1.0f;
      }
    }
  }
  std::vector<int64_t> ids{1, 2, 3, 4};
  std::vector<int64_t> flags0{0, 0, 0, 0};
  std::vector<int64_t> flags1{0, 1, 1, 0};
  Tensor mask = Tensor::Ones({1, 4});
  Rng r1(0), r2(0);
  Variable a = enc.Forward(ids, 1, 4, mask, r1, &flags0);
  Variable b = enc.Forward(ids, 1, 4, mask, r2, &flags1);
  EXPECT_FALSE(a.value().AllClose(b.value()));
}

TEST(TransformerTest, PaddingPositionDoesNotAffectCls) {
  auto config = SmallConfig();
  Rng rng(19);
  nn::TransformerEncoder enc(config, rng);
  enc.SetTraining(false);
  Tensor mask = Tensor::FromVector({1, 4}, {1, 1, 1, 0});
  Rng r1(0), r2(0);
  Variable a = enc.EncodeCls({1, 2, 3, 7}, 1, 4, mask, r1);
  Variable b = enc.EncodeCls({1, 2, 3, 9}, 1, 4, mask, r2);
  EXPECT_TRUE(a.value().AllClose(b.value(), 1e-4f));
}

TEST(TransformerTest, DecoderOutputShape) {
  auto config = SmallConfig();
  Rng rng(20);
  nn::TransformerEncoder enc(config, rng);
  nn::TransformerDecoder dec(config, rng);
  enc.SetTraining(false);
  dec.SetTraining(false);
  std::vector<int64_t> src{1, 2, 3, 4};
  std::vector<int64_t> tgt{5, 6, 7};
  Tensor src_mask = Tensor::Ones({1, 4});
  Tensor tgt_mask = Tensor::Ones({1, 3});
  Variable memory = enc.Forward(src, 1, 4, src_mask, rng);
  Variable logits = dec.Forward(tgt, 1, 3, tgt_mask, memory, src_mask, rng);
  EXPECT_EQ(logits.value().shape(), (std::vector<int64_t>{1, 3, 20}));
}

TEST(TransformerTest, DecoderCausality) {
  // Logits at position t must not depend on target tokens after t.
  auto config = SmallConfig();
  Rng rng(21);
  nn::TransformerEncoder enc(config, rng);
  nn::TransformerDecoder dec(config, rng);
  enc.SetTraining(false);
  dec.SetTraining(false);
  std::vector<int64_t> src{1, 2, 3};
  Tensor src_mask = Tensor::Ones({1, 3});
  Tensor tgt_mask = Tensor::Ones({1, 3});
  Rng r(0);
  Variable memory = enc.Forward(src, 1, 3, src_mask, r);
  Variable l1 = dec.Forward({5, 6, 7}, 1, 3, tgt_mask, memory, src_mask, r);
  Variable l2 = dec.Forward({5, 6, 9}, 1, 3, tgt_mask, memory, src_mask, r);
  for (int64_t t = 0; t < 2; ++t)
    for (int64_t c = 0; c < 20; ++c)
      EXPECT_NEAR(l1.value().at({0, t, c}), l2.value().at({0, t, c}), 1e-4f);
}

TEST(OptimTest, SgdDescendsQuadratic) {
  Variable x(Tensor::FromVector({2}, {5.0f, -3.0f}), true);
  nn::Sgd opt({x}, 0.1f);
  for (int step = 0; step < 100; ++step) {
    opt.ZeroGrad();
    ops::Sum(ops::Mul(x, x)).Backward();
    opt.Step();
  }
  EXPECT_LT(x.value().AbsMax(), 1e-3f);
}

TEST(OptimTest, SgdMomentumAcceleratesDescent) {
  Variable a(Tensor::FromVector({1}, {10.0f}), true);
  Variable b(Tensor::FromVector({1}, {10.0f}), true);
  nn::Sgd plain({a}, 0.01f);
  nn::Sgd heavy({b}, 0.01f, 0.9f);
  for (int step = 0; step < 50; ++step) {
    plain.ZeroGrad();
    ops::Sum(ops::Mul(a, a)).Backward();
    plain.Step();
    heavy.ZeroGrad();
    ops::Sum(ops::Mul(b, b)).Backward();
    heavy.Step();
  }
  EXPECT_LT(std::fabs(b.value()[0]), std::fabs(a.value()[0]));
}

TEST(OptimTest, AdamDescendsQuadratic) {
  Variable x(Tensor::FromVector({3}, {2.0f, -1.0f, 0.5f}), true);
  nn::Adam opt({x}, 0.05f);
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    ops::Sum(ops::Mul(x, x)).Backward();
    opt.Step();
  }
  EXPECT_LT(x.value().AbsMax(), 1e-2f);
}

TEST(OptimTest, AdamSkipsParamsWithoutGrad) {
  Variable x(Tensor::FromVector({1}, {1.0f}), true);
  Variable unused(Tensor::FromVector({1}, {7.0f}), true);
  nn::Adam opt({x, unused}, 0.1f);
  opt.ZeroGrad();
  ops::Sum(ops::Mul(x, x)).Backward();
  opt.Step();
  EXPECT_EQ(unused.value()[0], 7.0f);
  EXPECT_NE(x.value()[0], 1.0f);
}

TEST(OptimTest, WeightDecayShrinksWeights) {
  Variable x(Tensor::FromVector({1}, {1.0f}), true);
  nn::Adam opt({x}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  // Loss is constant zero gradient except decay: simulate by backward of 0*x.
  for (int step = 0; step < 10; ++step) {
    opt.ZeroGrad();
    ops::Sum(ops::Scale(x, 0.0f)).Backward();
    opt.Step();
  }
  EXPECT_LT(x.value()[0], 1.0f);
}

TEST(OptimTest, ClipGradNormScalesDown) {
  Variable x(Tensor::FromVector({2}, {0.0f, 0.0f}), true);
  ops::Sum(ops::Scale(x, 30.0f)).Backward();  // grad = [30, 30]
  const float before = nn::ClipGradNorm({x}, 1.0f);
  EXPECT_NEAR(before, std::sqrt(2.0f) * 30.0f, 1e-3f);
  EXPECT_NEAR(x.grad().Norm(), 1.0f, 1e-4f);
}

TEST(OptimTest, ClipGradNormNoOpBelowThreshold) {
  Variable x(Tensor::FromVector({2}, {0.0f, 0.0f}), true);
  ops::Sum(ops::Scale(x, 0.1f)).Backward();
  nn::ClipGradNorm({x}, 10.0f);
  EXPECT_NEAR(x.grad()[0], 0.1f, 1e-6f);
}

TEST(TrainingIntegrationTest, TinyClassifierLearnsXor) {
  // End-to-end sanity: a 2-layer MLP built from the library fits XOR.
  Rng rng(22);
  nn::Linear l1(2, 8, rng);
  nn::Linear l2(8, 2, rng);
  std::vector<Variable> params = l1.Parameters();
  for (auto& p : l2.Parameters()) params.push_back(p);
  nn::Adam opt(params, 0.05f);

  Tensor inputs = Tensor::FromVector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  std::vector<int64_t> labels{0, 1, 1, 0};
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    Variable x(inputs, false);
    Variable logits = l2.Forward(ops::Tanh(l1.Forward(x)));
    ops::CrossEntropyMean(logits, labels).Backward();
    opt.Step();
  }
  Variable x(inputs, false);
  Tensor probs = ops::SoftmaxRows(l2.Forward(ops::Tanh(l1.Forward(x))).value());
  for (int64_t i = 0; i < 4; ++i) {
    const int64_t pred = probs.at({i, 0}) > probs.at({i, 1}) ? 0 : 1;
    EXPECT_EQ(pred, labels[i]) << "example " << i;
  }
}

}  // namespace
}  // namespace rotom
