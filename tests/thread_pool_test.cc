#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace rotom {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, 10, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kTotal = 100003;  // prime: exercises a ragged last chunk
  std::vector<std::atomic<int>> hits(kTotal);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kTotal, 128, [&](int64_t begin, int64_t end) {
    ASSERT_LE(0, begin);
    ASSERT_LE(begin, end);
    ASSERT_LE(end, kTotal);
    for (int64_t i = begin; i < end; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < kTotal; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 16, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SmallRangeRunsInlineAsOneChunk) {
  ThreadPool pool(4);
  int calls = 0;
  // total <= grain: one inline call covering the whole range.
  pool.ParallelFor(7, 16, [&](int64_t begin, int64_t end) {
    ++calls;
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 7);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ChunksRespectGrain) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  constexpr int64_t kTotal = 1000;
  constexpr int64_t kGrain = 64;
  pool.ParallelFor(kTotal, kGrain, [&](int64_t begin, int64_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  int64_t covered = 0;
  for (const auto& [begin, end] : chunks) {
    covered += end - begin;
    // Every chunk but the ragged tail holds at least `grain` indices.
    if (end != kTotal) EXPECT_GE(end - begin, kGrain);
  }
  EXPECT_EQ(covered, kTotal);
}

TEST(ThreadPoolTest, ManySmallJobsBackToBack) {
  // Stresses the generation machinery: a stale worker from job g must never
  // claim chunks of job g+1.
  ThreadPool pool(4);
  for (int job = 0; job < 500; ++job) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(64, 1, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i)
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 64 * 63 / 2) << "job " << job;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, 1, [&](int64_t begin, int64_t end) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    for (int64_t i = begin; i < end; ++i) {
      // A nested loop must not deadlock or re-enter the pool.
      pool.ParallelFor(10, 1, [&](int64_t b2, int64_t e2) {
        total.fetch_add(e2 - b2, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  EXPECT_EQ(total.load(), 8 * 10);
}

TEST(ThreadPoolTest, ChunkBoundariesDependOnlyOnConfiguration) {
  // Two identical loops on the same pool must produce identical partitions
  // (the determinism contract); collect boundaries and compare.
  ThreadPool pool(4);
  auto boundaries = [&] {
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    pool.ParallelFor(12345, 100, [&](int64_t begin, int64_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  EXPECT_EQ(boundaries(), boundaries());
}

TEST(ComputePoolTest, SetComputeThreadsResizes) {
  SetComputeThreads(2);
  EXPECT_EQ(ComputeThreads(), 2);
  EXPECT_EQ(ComputePool().num_threads(), 2);
  SetComputeThreads(0);  // back to automatic sizing
  EXPECT_GE(ComputeThreads(), 1);
}

}  // namespace
}  // namespace rotom
