#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "invda/invda.h"
#include "util/string_util.h"

namespace rotom {
namespace {

std::vector<std::string> TinyCorpus() {
  return {
      "where is the orange bowl",     "where is the super bowl held",
      "who won the orange bowl",      "where is the stadium located",
      "what city hosts the bowl",     "where is the arena",
      "where is the orange stadium",  "who plays in the orange bowl",
  };
}

std::shared_ptr<text::Vocabulary> CorpusVocab() {
  std::vector<std::vector<std::string>> docs;
  for (const auto& s : TinyCorpus()) docs.push_back(text::Tokenize(s));
  return std::make_shared<text::Vocabulary>(
      text::Vocabulary::BuildFromCorpus(docs));
}

models::Seq2SeqConfig TinyConfig() {
  models::Seq2SeqConfig config;
  config.max_src_len = 12;
  config.max_tgt_len = 12;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  return config;
}

TEST(BuildCorruptionPairsTest, TargetsAreOriginals) {
  Rng rng(1);
  auto corpus = TinyCorpus();
  auto pairs = invda::BuildCorruptionPairs(corpus, 2, {}, false, false, rng);
  ASSERT_EQ(pairs.size(), corpus.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].second, corpus[i]);
  }
}

TEST(BuildCorruptionPairsTest, InputsAreUsuallyCorrupted) {
  Rng rng(2);
  auto corpus = TinyCorpus();
  auto pairs = invda::BuildCorruptionPairs(corpus, 3, {}, false, false, rng);
  int changed = 0;
  for (const auto& [input, target] : pairs) changed += input != target;
  EXPECT_GT(changed, static_cast<int>(corpus.size()) / 2);
}

TEST(BuildCorruptionPairsTest, MoreOpsMoreCorruption) {
  auto corpus = TinyCorpus();
  double dist1 = 0, dist4 = 0;
  for (int trial = 0; trial < 5; ++trial) {
    Rng r1(trial), r4(trial + 100);
    for (const auto& [in, tgt] :
         invda::BuildCorruptionPairs(corpus, 1, {}, false, false, r1))
      dist1 += EditDistance(in, tgt);
    for (const auto& [in, tgt] :
         invda::BuildCorruptionPairs(corpus, 4, {}, false, false, r4))
      dist4 += EditDistance(in, tgt);
  }
  EXPECT_GT(dist4, dist1);
}

TEST(BuildCorruptionPairsTest, RecordTaskKeepsStructure) {
  Rng rng(3);
  std::vector<std::string> corpus = {
      "[COL] title [VAL] effective timestamping in databases [COL] year [VAL] 1999"};
  auto pairs = invda::BuildCorruptionPairs(corpus, 2, {}, false, true, rng);
  // Structural tokens survive corruption.
  EXPECT_NE(pairs[0].first.find("[VAL]"), std::string::npos);
}

TEST(InvDaTest, TrainThenAugmentProducesVocabTokens) {
  auto vocab = CorpusVocab();
  invda::InvDa generator(TinyConfig(), vocab, {}, false, false, /*seed=*/7);
  invda::InvDaOptions options;
  options.epochs = 2;
  options.batch_size = 4;
  options.sampling.max_len = 8;
  generator.Train(TinyCorpus(), options);
  EXPECT_TRUE(generator.trained());

  auto augs = generator.Augment("where is the orange bowl", 3);
  ASSERT_EQ(augs.size(), 3u);
  for (const auto& aug : augs) {
    for (const auto& token : text::Tokenize(aug))
      EXPECT_TRUE(vocab->Contains(token)) << token;
  }
}

TEST(InvDaTest, AugmentBeforeTrainDies) {
  auto vocab = CorpusVocab();
  invda::InvDa generator(TinyConfig(), vocab, {}, false, false, 7);
  EXPECT_DEATH(generator.Augment("where is the orange bowl", 1), "Train");
}

TEST(InvDaTest, CachePrecomputeAndSample) {
  auto vocab = CorpusVocab();
  invda::InvDa generator(TinyConfig(), vocab, {}, false, false, 11);
  invda::InvDaOptions options;
  options.epochs = 1;
  options.batch_size = 4;
  options.augments_per_example = 3;
  options.sampling.max_len = 8;
  generator.Train(TinyCorpus(), options);

  std::vector<std::string> inputs = {"where is the orange bowl",
                                     "who won the orange bowl"};
  generator.PrecomputeCache(inputs, options);
  for (const auto& input : inputs) {
    EXPECT_FALSE(generator.CachedAugmentations(input).empty());
  }
  Rng rng(5);
  const std::string sampled = generator.Sample(inputs[0], rng);
  const auto& cached = generator.CachedAugmentations(inputs[0]);
  EXPECT_NE(std::find(cached.begin(), cached.end(), sampled), cached.end());
}

TEST(InvDaTest, SampleWithoutCacheFallsBackToGeneration) {
  auto vocab = CorpusVocab();
  invda::InvDa generator(TinyConfig(), vocab, {}, false, false, 13);
  invda::InvDaOptions options;
  options.epochs = 1;
  options.batch_size = 4;
  options.sampling.max_len = 6;
  generator.Train(TinyCorpus(), options);
  Rng rng(6);
  const std::string out = generator.Sample("where is the arena", rng);
  EXPECT_FALSE(generator.CachedAugmentations("where is the arena").empty());
  (void)out;
}

TEST(InvDaTest, EmptyUnlabeledPoolStillUsable) {
  auto vocab = CorpusVocab();
  invda::InvDa generator(TinyConfig(), vocab, {}, false, false, 17);
  invda::InvDaOptions options;
  options.sampling.max_len = 4;
  generator.Train({}, options);
  EXPECT_TRUE(generator.trained());
  auto augs = generator.Augment("where is the arena", 1);
  EXPECT_EQ(augs.size(), 1u);
}

}  // namespace
}  // namespace rotom
