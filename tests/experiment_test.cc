#include <gtest/gtest.h>

#include "data/edt_gen.h"
#include "data/textcls_gen.h"
#include "eval/experiment.h"
#include "util/timer.h"

namespace rotom {
namespace {

TEST(MetricsTest, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(eval::Accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(eval::Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, BinaryPrfBasics) {
  // preds: TP, FP, FN, TN
  auto prf = eval::BinaryPrf({1, 1, 0, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(prf.precision, 0.5);
  EXPECT_DOUBLE_EQ(prf.recall, 0.5);
  EXPECT_DOUBLE_EQ(prf.f1, 0.5);
}

TEST(MetricsTest, BinaryPrfDegenerate) {
  auto prf = eval::BinaryPrf({0, 0}, {1, 1});
  EXPECT_DOUBLE_EQ(prf.f1, 0.0);
  auto perfect = eval::BinaryPrf({1, 0}, {1, 0});
  EXPECT_DOUBLE_EQ(perfect.f1, 1.0);
}

TEST(ExperimentTest, MethodNames) {
  EXPECT_STREQ(eval::MethodName(eval::Method::kBaseline), "Baseline");
  EXPECT_STREQ(eval::MethodName(eval::Method::kRotomSsl), "Rotom+SSL");
  EXPECT_EQ(eval::AllMethods().size(), 5u);
}

TEST(ExperimentTest, BuildTaskVocabularyCoversTrain) {
  data::TextClsOptions options;
  options.train_size = 20;
  options.unlabeled_size = 40;
  auto ds = data::MakeTextClsDataset("sst2", options);
  auto vocab = eval::BuildTaskVocabulary(ds);
  // Every training token must be in vocabulary (built from train+unlabeled).
  for (const auto& e : ds.train) {
    for (const auto& token : text::Tokenize(e.text)) {
      EXPECT_TRUE(vocab->Contains(token)) << token;
    }
  }
}

eval::ExperimentOptions TinyExperimentOptions() {
  eval::ExperimentOptions options;
  options.classifier.max_len = 20;
  options.classifier.dim = 16;
  options.classifier.num_heads = 2;
  options.classifier.num_layers = 1;
  options.classifier.ffn_dim = 32;
  options.seq2seq.max_src_len = 20;
  options.seq2seq.max_tgt_len = 20;
  options.seq2seq.dim = 16;
  options.seq2seq.num_heads = 2;
  options.seq2seq.num_layers = 1;
  options.seq2seq.ffn_dim = 32;
  options.pretrain.epochs = 1;
  options.pretrain.max_corpus = 64;
  options.invda.epochs = 1;
  options.invda.max_corpus = 48;
  options.invda.augments_per_example = 2;
  options.invda.sampling.max_len = 16;
  options.epochs = 3;
  options.batch_size = 8;
  return options;
}

TEST(ExperimentTest, AllMethodsRunOnTinyTextCls) {
  data::TextClsOptions ds_options;
  ds_options.train_size = 24;
  ds_options.test_size = 40;
  ds_options.unlabeled_size = 60;
  ds_options.seed = 1;
  auto ds = data::MakeTextClsDataset("sst2", ds_options);

  eval::TaskContext context(ds, TinyExperimentOptions());
  EXPECT_EQ(context.metric(), eval::MetricKind::kAccuracy);
  for (auto method : eval::AllMethods()) {
    WallTimer timer;
    auto result = context.Run(method, /*seed=*/1);
    EXPECT_GE(result.test_metric, 0.0) << eval::MethodName(method);
    EXPECT_LE(result.test_metric, 100.0) << eval::MethodName(method);
    EXPECT_GT(result.train_seconds, 0.0) << eval::MethodName(method);
    std::fprintf(stderr, "[timing] %-10s %.2fs (train %.2fs) metric %.1f\n",
                 eval::MethodName(method), timer.Seconds(),
                 result.train_seconds, result.test_metric);
  }
}

TEST(ExperimentTest, EdtTaskUsesF1) {
  data::EdtOptions ds_options;
  ds_options.budget = 40;
  ds_options.table_rows = 80;
  ds_options.seed = 2;
  auto ds = data::MakeEdtDataset("beers", ds_options);
  eval::TaskContext context(ds, TinyExperimentOptions());
  EXPECT_EQ(context.metric(), eval::MetricKind::kF1);
  auto result = context.Run(eval::Method::kBaseline, 1);
  EXPECT_GE(result.test_metric, 0.0);
}

TEST(ExperimentTest, RunsAreSeedDependent) {
  data::TextClsOptions ds_options;
  ds_options.train_size = 16;
  ds_options.test_size = 30;
  ds_options.unlabeled_size = 30;
  auto ds = data::MakeTextClsDataset("trec", ds_options);
  eval::TaskContext context(ds, TinyExperimentOptions());
  auto a = context.Run(eval::Method::kBaseline, 1);
  auto b = context.Run(eval::Method::kBaseline, 1);
  // Same seed, same cached pretrained start -> identical result.
  EXPECT_DOUBLE_EQ(a.test_metric, b.test_metric);
}

}  // namespace
}  // namespace rotom
