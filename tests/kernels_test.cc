#include "tensor/kernels.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace rotom {
namespace {

std::vector<float> RandVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

// Naive triple-loop references the tiled kernels are checked against.
void RefGemmAB(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  for (int64_t i = 0; i < m; ++i)
    for (int64_t l = 0; l < k; ++l)
      for (int64_t j = 0; j < n; ++j) c[i * n + j] += a[i * k + l] * b[l * n + j];
}

void RefGemmABT(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j)
      for (int64_t l = 0; l < k; ++l) c[i * n + j] += a[i * k + l] * b[j * k + l];
}

void RefGemmATB(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  for (int64_t i = 0; i < m; ++i)
    for (int64_t l = 0; l < k; ++l)
      for (int64_t j = 0; j < n; ++j) c[l * n + j] += a[i * k + l] * b[i * n + j];
}

void ExpectAllNear(const std::vector<float>& got, const std::vector<float>& want,
                   float tol) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], want[i], tol * (1.0f + std::fabs(want[i]))) << "at " << i;
}

class KernelsTest : public ::testing::Test {
 protected:
  // Odd extents exercise the ragged edges of every tile loop.
  static constexpr int64_t kM = 37, kK = 71, kN = 29;

  void TearDown() override { SetComputeThreads(0); }
};

TEST_F(KernelsTest, GemmABMatchesReference) {
  const auto a = RandVec(kM * kK, 1), b = RandVec(kK * kN, 2);
  std::vector<float> c(kM * kN, 0.5f), ref = c;  // nonzero: accumulate semantics
  kernels::GemmAB(a.data(), b.data(), c.data(), kM, kK, kN);
  RefGemmAB(a.data(), b.data(), ref.data(), kM, kK, kN);
  ExpectAllNear(c, ref, 1e-4f);
}

TEST_F(KernelsTest, GemmABTMatchesReference) {
  const auto a = RandVec(kM * kK, 3), b = RandVec(kN * kK, 4);
  std::vector<float> c(kM * kN, -0.25f), ref = c;
  kernels::GemmABT(a.data(), b.data(), c.data(), kM, kK, kN);
  RefGemmABT(a.data(), b.data(), ref.data(), kM, kK, kN);
  ExpectAllNear(c, ref, 1e-4f);
}

TEST_F(KernelsTest, GemmATBMatchesReference) {
  const auto a = RandVec(kM * kK, 5), b = RandVec(kM * kN, 6);
  std::vector<float> c(kK * kN, 1.0f), ref = c;
  kernels::GemmATB(a.data(), b.data(), c.data(), kM, kK, kN);
  RefGemmATB(a.data(), b.data(), ref.data(), kM, kK, kN);
  ExpectAllNear(c, ref, 1e-4f);
}

TEST_F(KernelsTest, BatchedGemmABSharedB) {
  constexpr int64_t kBatch = 5;
  const auto a = RandVec(kBatch * kM * kK, 7), b = RandVec(kK * kN, 8);
  std::vector<float> c(kBatch * kM * kN, 0.0f), ref = c;
  kernels::BatchedGemmAB(a.data(), b.data(), c.data(), kBatch, kM, kK, kN,
                         /*b_stride=*/0);
  for (int64_t s = 0; s < kBatch; ++s)
    RefGemmAB(a.data() + s * kM * kK, b.data(), ref.data() + s * kM * kN, kM,
              kK, kN);
  ExpectAllNear(c, ref, 1e-4f);
}

TEST_F(KernelsTest, BatchedGemmABTPerSliceB) {
  constexpr int64_t kBatch = 3;
  const auto a = RandVec(kBatch * kM * kK, 9), b = RandVec(kBatch * kN * kK, 10);
  std::vector<float> c(kBatch * kM * kN, 0.0f), ref = c;
  kernels::BatchedGemmABT(a.data(), b.data(), c.data(), kBatch, kM, kK, kN,
                          /*b_stride=*/kN * kK);
  for (int64_t s = 0; s < kBatch; ++s)
    RefGemmABT(a.data() + s * kM * kK, b.data() + s * kN * kK,
               ref.data() + s * kM * kN, kM, kK, kN);
  ExpectAllNear(c, ref, 1e-4f);
}

TEST_F(KernelsTest, BatchedGemmATBSharedOutputSumsBatches) {
  constexpr int64_t kBatch = 4;
  const auto a = RandVec(kBatch * kM * kK, 11), b = RandVec(kBatch * kM * kN, 12);
  std::vector<float> c(kK * kN, 0.0f), ref = c;
  kernels::BatchedGemmATB(a.data(), b.data(), c.data(), kBatch, kM, kK, kN,
                          /*c_stride=*/0);
  for (int64_t s = 0; s < kBatch; ++s)
    RefGemmATB(a.data() + s * kM * kK, b.data() + s * kM * kN, ref.data(), kM,
               kK, kN);
  ExpectAllNear(c, ref, 1e-3f);
}

TEST_F(KernelsTest, GemmBitIdenticalAcrossThreadCounts) {
  constexpr int64_t kBatch = 3;
  const auto a = RandVec(kBatch * kM * kK, 13), b = RandVec(kK * kN, 14);
  auto run = [&](int threads) {
    SetComputeThreads(threads);
    std::vector<float> c(kBatch * kM * kN, 0.0f);
    kernels::BatchedGemmAB(a.data(), b.data(), c.data(), kBatch, kM, kK, kN, 0);
    return c;
  };
  const auto serial = run(1);
  const auto quad = run(4);
  for (size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], quad[i]) << "element " << i;
}

TEST_F(KernelsTest, SoftmaxRowsNormalizes) {
  constexpr int64_t kRows = 11, kCols = 23;
  const auto x = RandVec(kRows * kCols, 15);
  std::vector<float> y(kRows * kCols);
  kernels::SoftmaxRows(x.data(), y.data(), kRows, kCols);
  for (int64_t r = 0; r < kRows; ++r) {
    double sum = 0.0;
    for (int64_t j = 0; j < kCols; ++j) {
      EXPECT_GT(y[r * kCols + j], 0.0f);
      sum += y[r * kCols + j];
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST_F(KernelsTest, LogSoftmaxRowsMatchesSoftmax) {
  constexpr int64_t kRows = 7, kCols = 13;
  const auto x = RandVec(kRows * kCols, 16);
  std::vector<float> p(kRows * kCols), lp(kRows * kCols);
  kernels::SoftmaxRows(x.data(), p.data(), kRows, kCols);
  kernels::LogSoftmaxRows(x.data(), lp.data(), kRows, kCols);
  for (size_t i = 0; i < p.size(); ++i)
    EXPECT_NEAR(std::exp(lp[i]), p[i], 1e-5f);
}

TEST_F(KernelsTest, LayerNormRowsNormalizesAndScales) {
  constexpr int64_t kRows = 9, kCols = 32;
  const auto x = RandVec(kRows * kCols, 17);
  const auto gamma = RandVec(kCols, 18);
  const auto beta = RandVec(kCols, 19);
  std::vector<float> y(kRows * kCols), xhat(kRows * kCols), inv_std(kRows);
  kernels::LayerNormRows(x.data(), gamma.data(), beta.data(), 1e-5f, y.data(),
                         xhat.data(), inv_std.data(), kRows, kCols);
  for (int64_t r = 0; r < kRows; ++r) {
    double mean = 0.0, var = 0.0;
    for (int64_t j = 0; j < kCols; ++j) mean += xhat[r * kCols + j];
    mean /= kCols;
    for (int64_t j = 0; j < kCols; ++j) {
      const double d = xhat[r * kCols + j] - mean;
      var += d * d;
    }
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var / kCols, 1.0, 1e-3);
    for (int64_t j = 0; j < kCols; ++j)
      EXPECT_NEAR(y[r * kCols + j],
                  gamma[j] * xhat[r * kCols + j] + beta[j], 1e-5f);
  }
}

TEST_F(KernelsTest, AccumulateRowsSumsColumns) {
  constexpr int64_t kRows = 503, kCols = 17;  // enough rows to go parallel
  const auto x = RandVec(kRows * kCols, 20);
  std::vector<float> acc(kCols, 1.0f);
  kernels::AccumulateRows(x.data(), acc.data(), kRows, kCols);
  for (int64_t j = 0; j < kCols; ++j) {
    float want = 1.0f;
    for (int64_t r = 0; r < kRows; ++r) want += x[r * kCols + j];
    EXPECT_NEAR(acc[j], want, 1e-3f * kRows / 100);
  }
}

TEST_F(KernelsTest, BroadcastAddRows) {
  constexpr int64_t kRows = 6, kCols = 5;
  std::vector<float> y(kRows * kCols, 2.0f);
  const auto bias = RandVec(kCols, 21);
  kernels::BroadcastAddRows(y.data(), bias.data(), kRows, kCols);
  for (int64_t r = 0; r < kRows; ++r)
    for (int64_t j = 0; j < kCols; ++j)
      EXPECT_NEAR(y[r * kCols + j], 2.0f + bias[j], 1e-6f);
}

TEST_F(KernelsTest, GatherThenScatterAddRoundTrips) {
  constexpr int64_t kVocab = 10, kCols = 4;
  const auto table = RandVec(kVocab * kCols, 22);
  const std::vector<int64_t> ids = {3, 7, 3, 0};  // duplicate id 3
  std::vector<float> out(ids.size() * kCols);
  kernels::GatherRows(table.data(), ids.data(), out.data(),
                      static_cast<int64_t>(ids.size()), kCols);
  for (size_t i = 0; i < ids.size(); ++i)
    for (int64_t j = 0; j < kCols; ++j)
      EXPECT_EQ(out[i * kCols + j], table[ids[i] * kCols + j]);

  std::vector<float> acc(kVocab * kCols, 0.0f);
  kernels::ScatterAddRows(out.data(), ids.data(), acc.data(),
                          static_cast<int64_t>(ids.size()), kCols);
  for (int64_t j = 0; j < kCols; ++j) {
    EXPECT_NEAR(acc[3 * kCols + j], 2.0f * table[3 * kCols + j], 1e-5f);
    EXPECT_NEAR(acc[7 * kCols + j], table[7 * kCols + j], 1e-5f);
    EXPECT_EQ(acc[1 * kCols + j], 0.0f);  // untouched row
  }
}

TEST_F(KernelsTest, RowReductions) {
  const std::vector<float> x = {0.5f, -2.0f, 3.25f, 3.25f, 1.0f};
  EXPECT_EQ(kernels::RowMax(x.data(), 5), 3.25f);
  EXPECT_EQ(kernels::RowArgmax(x.data(), 5), 2);  // first of the tied maxima
  double want = 0.0;
  for (float v : x) want += std::exp(static_cast<double>(v) - 3.25);
  EXPECT_NEAR(kernels::RowLogSumExp(x.data(), 5), 3.25 + std::log(want), 1e-5);
}

TEST_F(KernelsTest, MapApplyZipAxpy) {
  const auto x = RandVec(1000, 23), y = RandVec(1000, 24);
  std::vector<float> out(1000);
  kernels::Map(x.data(), out.data(), 1000, [](float v) { return 2.0f * v; });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 2.0f * x[i]);

  kernels::ZipMap(x.data(), y.data(), out.data(), 1000,
                  [](float a, float b) { return a * b; });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], x[i] * y[i]);

  std::vector<float> acc = y;
  kernels::Axpy(x.data(), acc.data(), 1000, 0.5f);
  for (size_t i = 0; i < acc.size(); ++i)
    EXPECT_NEAR(acc[i], y[i] + 0.5f * x[i], 1e-6f);
}

}  // namespace
}  // namespace rotom
