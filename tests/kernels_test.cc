#include "tensor/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/quant.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rotom {
namespace {

std::vector<float> RandVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

// Naive triple-loop references the tiled kernels are checked against.
void RefGemmAB(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  for (int64_t i = 0; i < m; ++i)
    for (int64_t l = 0; l < k; ++l)
      for (int64_t j = 0; j < n; ++j) c[i * n + j] += a[i * k + l] * b[l * n + j];
}

void RefGemmABT(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j)
      for (int64_t l = 0; l < k; ++l) c[i * n + j] += a[i * k + l] * b[j * k + l];
}

void RefGemmATB(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  for (int64_t i = 0; i < m; ++i)
    for (int64_t l = 0; l < k; ++l)
      for (int64_t j = 0; j < n; ++j) c[l * n + j] += a[i * k + l] * b[i * n + j];
}

void ExpectAllNear(const std::vector<float>& got, const std::vector<float>& want,
                   float tol) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], want[i], tol * (1.0f + std::fabs(want[i]))) << "at " << i;
}

class KernelsTest : public ::testing::Test {
 protected:
  // Odd extents exercise the ragged edges of every tile loop.
  static constexpr int64_t kM = 37, kK = 71, kN = 29;

  void TearDown() override { SetComputeThreads(0); }
};

TEST_F(KernelsTest, GemmABMatchesReference) {
  const auto a = RandVec(kM * kK, 1), b = RandVec(kK * kN, 2);
  std::vector<float> c(kM * kN, 0.5f), ref = c;  // nonzero: accumulate semantics
  kernels::GemmAB(a.data(), b.data(), c.data(), kM, kK, kN);
  RefGemmAB(a.data(), b.data(), ref.data(), kM, kK, kN);
  ExpectAllNear(c, ref, 1e-4f);
}

TEST_F(KernelsTest, GemmABTMatchesReference) {
  const auto a = RandVec(kM * kK, 3), b = RandVec(kN * kK, 4);
  std::vector<float> c(kM * kN, -0.25f), ref = c;
  kernels::GemmABT(a.data(), b.data(), c.data(), kM, kK, kN);
  RefGemmABT(a.data(), b.data(), ref.data(), kM, kK, kN);
  ExpectAllNear(c, ref, 1e-4f);
}

TEST_F(KernelsTest, GemmATBMatchesReference) {
  const auto a = RandVec(kM * kK, 5), b = RandVec(kM * kN, 6);
  std::vector<float> c(kK * kN, 1.0f), ref = c;
  kernels::GemmATB(a.data(), b.data(), c.data(), kM, kK, kN);
  RefGemmATB(a.data(), b.data(), ref.data(), kM, kK, kN);
  ExpectAllNear(c, ref, 1e-4f);
}

TEST_F(KernelsTest, BatchedGemmABSharedB) {
  constexpr int64_t kBatch = 5;
  const auto a = RandVec(kBatch * kM * kK, 7), b = RandVec(kK * kN, 8);
  std::vector<float> c(kBatch * kM * kN, 0.0f), ref = c;
  kernels::BatchedGemmAB(a.data(), b.data(), c.data(), kBatch, kM, kK, kN,
                         /*b_stride=*/0);
  for (int64_t s = 0; s < kBatch; ++s)
    RefGemmAB(a.data() + s * kM * kK, b.data(), ref.data() + s * kM * kN, kM,
              kK, kN);
  ExpectAllNear(c, ref, 1e-4f);
}

TEST_F(KernelsTest, BatchedGemmABTPerSliceB) {
  constexpr int64_t kBatch = 3;
  const auto a = RandVec(kBatch * kM * kK, 9), b = RandVec(kBatch * kN * kK, 10);
  std::vector<float> c(kBatch * kM * kN, 0.0f), ref = c;
  kernels::BatchedGemmABT(a.data(), b.data(), c.data(), kBatch, kM, kK, kN,
                          /*b_stride=*/kN * kK);
  for (int64_t s = 0; s < kBatch; ++s)
    RefGemmABT(a.data() + s * kM * kK, b.data() + s * kN * kK,
               ref.data() + s * kM * kN, kM, kK, kN);
  ExpectAllNear(c, ref, 1e-4f);
}

TEST_F(KernelsTest, BatchedGemmATBSharedOutputSumsBatches) {
  constexpr int64_t kBatch = 4;
  const auto a = RandVec(kBatch * kM * kK, 11), b = RandVec(kBatch * kM * kN, 12);
  std::vector<float> c(kK * kN, 0.0f), ref = c;
  kernels::BatchedGemmATB(a.data(), b.data(), c.data(), kBatch, kM, kK, kN,
                          /*c_stride=*/0);
  for (int64_t s = 0; s < kBatch; ++s)
    RefGemmATB(a.data() + s * kM * kK, b.data() + s * kM * kN, ref.data(), kM,
               kK, kN);
  ExpectAllNear(c, ref, 1e-3f);
}

TEST_F(KernelsTest, GemmBitIdenticalAcrossThreadCounts) {
  constexpr int64_t kBatch = 3;
  const auto a = RandVec(kBatch * kM * kK, 13), b = RandVec(kK * kN, 14);
  auto run = [&](int threads) {
    SetComputeThreads(threads);
    std::vector<float> c(kBatch * kM * kN, 0.0f);
    kernels::BatchedGemmAB(a.data(), b.data(), c.data(), kBatch, kM, kK, kN, 0);
    return c;
  };
  const auto serial = run(1);
  const auto quad = run(4);
  for (size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], quad[i]) << "element " << i;
}

TEST_F(KernelsTest, SoftmaxRowsNormalizes) {
  constexpr int64_t kRows = 11, kCols = 23;
  const auto x = RandVec(kRows * kCols, 15);
  std::vector<float> y(kRows * kCols);
  kernels::SoftmaxRows(x.data(), y.data(), kRows, kCols);
  for (int64_t r = 0; r < kRows; ++r) {
    double sum = 0.0;
    for (int64_t j = 0; j < kCols; ++j) {
      EXPECT_GT(y[r * kCols + j], 0.0f);
      sum += y[r * kCols + j];
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST_F(KernelsTest, LogSoftmaxRowsMatchesSoftmax) {
  constexpr int64_t kRows = 7, kCols = 13;
  const auto x = RandVec(kRows * kCols, 16);
  std::vector<float> p(kRows * kCols), lp(kRows * kCols);
  kernels::SoftmaxRows(x.data(), p.data(), kRows, kCols);
  kernels::LogSoftmaxRows(x.data(), lp.data(), kRows, kCols);
  for (size_t i = 0; i < p.size(); ++i)
    EXPECT_NEAR(std::exp(lp[i]), p[i], 1e-5f);
}

TEST_F(KernelsTest, LayerNormRowsNormalizesAndScales) {
  constexpr int64_t kRows = 9, kCols = 32;
  const auto x = RandVec(kRows * kCols, 17);
  const auto gamma = RandVec(kCols, 18);
  const auto beta = RandVec(kCols, 19);
  std::vector<float> y(kRows * kCols), xhat(kRows * kCols), inv_std(kRows);
  kernels::LayerNormRows(x.data(), gamma.data(), beta.data(), 1e-5f, y.data(),
                         xhat.data(), inv_std.data(), kRows, kCols);
  for (int64_t r = 0; r < kRows; ++r) {
    double mean = 0.0, var = 0.0;
    for (int64_t j = 0; j < kCols; ++j) mean += xhat[r * kCols + j];
    mean /= kCols;
    for (int64_t j = 0; j < kCols; ++j) {
      const double d = xhat[r * kCols + j] - mean;
      var += d * d;
    }
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var / kCols, 1.0, 1e-3);
    for (int64_t j = 0; j < kCols; ++j)
      EXPECT_NEAR(y[r * kCols + j],
                  gamma[j] * xhat[r * kCols + j] + beta[j], 1e-5f);
  }
}

TEST_F(KernelsTest, AccumulateRowsSumsColumns) {
  constexpr int64_t kRows = 503, kCols = 17;  // enough rows to go parallel
  const auto x = RandVec(kRows * kCols, 20);
  std::vector<float> acc(kCols, 1.0f);
  kernels::AccumulateRows(x.data(), acc.data(), kRows, kCols);
  for (int64_t j = 0; j < kCols; ++j) {
    float want = 1.0f;
    for (int64_t r = 0; r < kRows; ++r) want += x[r * kCols + j];
    EXPECT_NEAR(acc[j], want, 1e-3f * kRows / 100);
  }
}

TEST_F(KernelsTest, BroadcastAddRows) {
  constexpr int64_t kRows = 6, kCols = 5;
  std::vector<float> y(kRows * kCols, 2.0f);
  const auto bias = RandVec(kCols, 21);
  kernels::BroadcastAddRows(y.data(), bias.data(), kRows, kCols);
  for (int64_t r = 0; r < kRows; ++r)
    for (int64_t j = 0; j < kCols; ++j)
      EXPECT_NEAR(y[r * kCols + j], 2.0f + bias[j], 1e-6f);
}

TEST_F(KernelsTest, GatherThenScatterAddRoundTrips) {
  constexpr int64_t kVocab = 10, kCols = 4;
  const auto table = RandVec(kVocab * kCols, 22);
  const std::vector<int64_t> ids = {3, 7, 3, 0};  // duplicate id 3
  std::vector<float> out(ids.size() * kCols);
  kernels::GatherRows(table.data(), ids.data(), out.data(),
                      static_cast<int64_t>(ids.size()), kCols);
  for (size_t i = 0; i < ids.size(); ++i)
    for (int64_t j = 0; j < kCols; ++j)
      EXPECT_EQ(out[i * kCols + j], table[ids[i] * kCols + j]);

  std::vector<float> acc(kVocab * kCols, 0.0f);
  kernels::ScatterAddRows(out.data(), ids.data(), acc.data(),
                          static_cast<int64_t>(ids.size()), kCols);
  for (int64_t j = 0; j < kCols; ++j) {
    EXPECT_NEAR(acc[3 * kCols + j], 2.0f * table[3 * kCols + j], 1e-5f);
    EXPECT_NEAR(acc[7 * kCols + j], table[7 * kCols + j], 1e-5f);
    EXPECT_EQ(acc[1 * kCols + j], 0.0f);  // untouched row
  }
}

TEST_F(KernelsTest, RowReductions) {
  const std::vector<float> x = {0.5f, -2.0f, 3.25f, 3.25f, 1.0f};
  EXPECT_EQ(kernels::RowMax(x.data(), 5), 3.25f);
  EXPECT_EQ(kernels::RowArgmax(x.data(), 5), 2);  // first of the tied maxima
  double want = 0.0;
  for (float v : x) want += std::exp(static_cast<double>(v) - 3.25);
  EXPECT_NEAR(kernels::RowLogSumExp(x.data(), 5), 3.25 + std::log(want), 1e-5);
}

TEST_F(KernelsTest, MapApplyZipAxpy) {
  const auto x = RandVec(1000, 23), y = RandVec(1000, 24);
  std::vector<float> out(1000);
  kernels::Map(x.data(), out.data(), 1000, [](float v) { return 2.0f * v; });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 2.0f * x[i]);

  kernels::ZipMap(x.data(), y.data(), out.data(), 1000,
                  [](float a, float b) { return a * b; });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], x[i] * y[i]);

  std::vector<float> acc = y;
  kernels::Axpy(x.data(), acc.data(), 1000, 0.5f);
  for (size_t i = 0; i < acc.size(); ++i)
    EXPECT_NEAR(acc[i], y[i] + 0.5f * x[i], 1e-6f);
}

// ---------------------------------------------------------------------------
// SIMD flavor equivalence. The dispatched kernels (whatever flavor this
// binary was built with) are compared against the serial scalar references
// in kernels::scalar across a sweep of shapes chosen to hit every ragged
// edge of the vector loops: below one vector width, exact multiples, and
// odd overhangs. f32 comparisons use a relative tolerance (the AVX2 bodies
// reassociate across FMA lanes); the int8 GEMM must be bit-identical.
// ---------------------------------------------------------------------------

struct GemmShape {
  int64_t m, k, n;
};

class KernelFlavorTest : public ::testing::TestWithParam<GemmShape> {
 protected:
  void TearDown() override { SetComputeThreads(0); }
};

TEST_P(KernelFlavorTest, GemmsMatchScalarReference) {
  const auto [m, k, n] = GetParam();
  const auto a = RandVec(m * k, 31), b = RandVec(k * n, 32);
  const auto bt = RandVec(n * k, 33), bb = RandVec(m * n, 34);

  std::vector<float> c(m * n, 0.25f), ref = c;
  kernels::GemmAB(a.data(), b.data(), c.data(), m, k, n);
  kernels::scalar::GemmAB(a.data(), b.data(), ref.data(), m, k, n);
  ExpectAllNear(c, ref, 1e-4f);

  std::vector<float> cbt(m * n, -0.5f), refbt = cbt;
  kernels::GemmABT(a.data(), bt.data(), cbt.data(), m, k, n);
  kernels::scalar::GemmABT(a.data(), bt.data(), refbt.data(), m, k, n);
  ExpectAllNear(cbt, refbt, 1e-4f);

  std::vector<float> catb(k * n, 1.0f), refatb = catb;
  kernels::GemmATB(a.data(), bb.data(), catb.data(), m, k, n);
  kernels::scalar::GemmATB(a.data(), bb.data(), refatb.data(), m, k, n);
  ExpectAllNear(catb, refatb, 1e-4f);
}

TEST_P(KernelFlavorTest, RowKernelsMatchScalarReference) {
  const auto [rows, unused_k, cols] = GetParam();
  (void)unused_k;
  const auto x = RandVec(rows * cols, 35);
  const auto gamma = RandVec(cols, 36), beta = RandVec(cols, 37);

  std::vector<float> soft(rows * cols), soft_ref(rows * cols);
  kernels::SoftmaxRows(x.data(), soft.data(), rows, cols);
  kernels::scalar::SoftmaxRows(x.data(), soft_ref.data(), rows, cols);
  ExpectAllNear(soft, soft_ref, 1e-6f);

  std::vector<float> y(rows * cols), xhat(rows * cols), inv_std(rows);
  std::vector<float> y_ref(rows * cols), xhat_ref(rows * cols),
      inv_std_ref(rows);
  kernels::LayerNormRows(x.data(), gamma.data(), beta.data(), 1e-5f, y.data(),
                         xhat.data(), inv_std.data(), rows, cols);
  kernels::scalar::LayerNormRows(x.data(), gamma.data(), beta.data(), 1e-5f,
                                 y_ref.data(), xhat_ref.data(),
                                 inv_std_ref.data(), rows, cols);
  ExpectAllNear(y, y_ref, 1e-5f);
  ExpectAllNear(xhat, xhat_ref, 1e-5f);
  ExpectAllNear(inv_std, inv_std_ref, 1e-5f);

  std::vector<float> axpy(rows * cols, 0.75f), axpy_ref(rows * cols, 0.75f);
  kernels::Axpy(x.data(), axpy.data(), rows * cols, -1.5f);
  kernels::scalar::Axpy(x.data(), axpy_ref.data(), rows * cols, -1.5f);
  ExpectAllNear(axpy, axpy_ref, 1e-6f);
}

TEST_P(KernelFlavorTest, QGemmABTBitIdenticalToScalar) {
  const auto [m, k, n] = GetParam();
  Rng rng(38);
  std::vector<int8_t> a(m * k), b(n * k);
  for (auto& v : a)
    v = static_cast<int8_t>(rng.UniformInt(255) - 127);  // [-127, 127]
  for (auto& v : b) v = static_cast<int8_t>(rng.UniformInt(255) - 127);

  std::vector<int32_t> ref(m * n, 7);
  quant::scalar::QGemmABT(a.data(), b.data(), ref.data(), m, k, n);
  for (int threads : {1, 4}) {
    SetComputeThreads(threads);
    std::vector<int32_t> c(m * n, 7);
    quant::QGemmABT(a.data(), b.data(), c.data(), m, k, n);
    ASSERT_EQ(c, ref) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelFlavorTest,
    ::testing::Values(GemmShape{1, 1, 1},       // degenerate
                      GemmShape{3, 5, 7},       // below one vector width
                      GemmShape{8, 16, 8},      // exact SIMD multiples
                      GemmShape{37, 71, 29},    // ragged overhangs
                      GemmShape{64, 33, 130}),  // tails in every loop
    [](const ::testing::TestParamInfo<GemmShape>& info) {
      return "m" + std::to_string(info.param.m) + "k" +
             std::to_string(info.param.k) + "n" + std::to_string(info.param.n);
    });

TEST(KernelFlavorNameTest, ReportsABuiltInFlavor) {
  const std::string flavor = kernels::SimdFlavorName();
  EXPECT_TRUE(flavor == "scalar" || flavor == "avx2" || flavor == "neon")
      << flavor;
}

}  // namespace
}  // namespace rotom
