// End-task parity gate for the int8 serving path (DESIGN.md §12): trains a
// smoke-scale entity-matching model on dblp_acm through the api facade,
// quantizes its snapshot, and scores the float and int8 sessions on the
// same held-out test pairs. The acceptance criterion is the one the int8
// path ships under: the quantized F1 stays within 0.5 points (percentage
// scale, the paper's tables' units) of the float F1. This is deliberately
// an end-to-end bound — per-tensor dequantization error is already covered
// by quant_test / rotom_quantize selftest; what an operator cares about is
// whether int8 serving changes the answers.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/em_gen.h"
#include "eval/metrics.h"
#include "rotom/api.h"

namespace rotom {
namespace {

// Smoke-scale but not degenerate: enough labeled pairs and epochs for the
// model to move off its random initialization, so the F1 comparison runs at
// a realistic operating point instead of on coin-flip logits.
api::TrainSpec ParitySpec() {
  data::EmOptions ds_options;
  ds_options.budget = 200;
  ds_options.test_size = 128;
  ds_options.unlabeled_size = 64;
  ds_options.seed = 7;

  api::TrainSpec spec;
  spec.dataset = data::MakeEmDataset("dblp_acm", ds_options);
  spec.method = eval::Method::kBaseline;  // fastest trainer; serving is the DUT
  spec.options.classifier.max_len = 40;
  spec.options.classifier.dim = 32;
  spec.options.classifier.num_heads = 2;
  spec.options.classifier.num_layers = 1;
  spec.options.classifier.ffn_dim = 64;
  spec.options.pretrain.epochs = 1;
  spec.options.pretrain.max_corpus = 32;
  spec.options.epochs = 10;
  spec.options.batch_size = 8;
  spec.seed = 9;
  return spec;
}

double SessionF1(const serve::InferenceSession& session,
                 const std::vector<data::Example>& examples) {
  std::vector<std::string> texts;
  std::vector<int64_t> labels;
  texts.reserve(examples.size());
  labels.reserve(examples.size());
  for (const auto& e : examples) {
    texts.push_back(e.text);
    labels.push_back(e.label);
  }
  const auto predictions = session.PredictBatch(texts);
  std::vector<int64_t> predicted;
  predicted.reserve(predictions.size());
  for (const auto& p : predictions) predicted.push_back(p.label);
  return 100.0 * eval::BinaryPrf(predicted, labels).f1;
}

TEST(QuantParityTest, Int8F1WithinHalfPointOfFloatOnDblpAcm) {
  const api::TrainSpec spec = ParitySpec();
  auto report = api::Train(spec);
  ASSERT_TRUE(report.ok()) << report.status().message();

  auto quantized = serve::QuantizeSnapshot(report.value().snapshot);
  ASSERT_TRUE(quantized.ok()) << quantized.status().message();

  auto float_session =
      serve::InferenceSession::Create(report.value().snapshot);
  auto int8_session = serve::InferenceSession::Create(quantized.value());
  ASSERT_TRUE(float_session.ok()) << float_session.status().message();
  ASSERT_TRUE(int8_session.ok()) << int8_session.status().message();
  ASSERT_FALSE(float_session.value()->quantized());
  ASSERT_TRUE(int8_session.value()->quantized());

  const double f32_f1 = SessionF1(*float_session.value(), spec.dataset.test);
  const double int8_f1 = SessionF1(*int8_session.value(), spec.dataset.test);

  std::printf("dblp_acm smoke F1: float %.2f, int8 %.2f, delta %.3f\n", f32_f1,
              int8_f1, std::abs(f32_f1 - int8_f1));

  // Percentage scale (0..100), matching ExperimentResult::test_metric.
  EXPECT_LE(std::abs(f32_f1 - int8_f1), 0.5)
      << "float F1 " << f32_f1 << " vs int8 F1 " << int8_f1;

  // Sanity on the operating point: the float model should not be degenerate
  // (all-negative predictions give F1 = 0 and would make the parity check
  // vacuous). The trained smoke model comfortably clears this.
  EXPECT_GT(f32_f1, 0.0) << "float model predicts no positives; parity "
                            "comparison is vacuous";
}

}  // namespace
}  // namespace rotom
