// Tests for the serve subsystem (DESIGN.md §10): snapshot save/load
// round-trip fidelity, Status-based rejection of malformed snapshot files,
// the thread-safe InferenceSession, the micro-batching BatchingServer
// (including the 8-thread concurrent load shape run under TSan by
// scripts/check.sh), and the rotom::api facade's spec validation.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/textcls_gen.h"
#include "obs/metrics.h"
#include "rotom/api.h"

namespace rotom {
namespace {

using serve::BatchingServer;
using serve::InferenceSession;
using serve::Prediction;
using serve::Snapshot;

std::shared_ptr<text::Vocabulary> ServeVocab() {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w :
       {"the", "movie", "was", "great", "terrible", "plot", "acting",
        "boring", "brilliant", "a", "an", "of"})
    vocab->AddToken(w);
  return vocab;
}

models::ClassifierConfig ServeConfig() {
  models::ClassifierConfig config;
  config.num_classes = 3;
  config.max_len = 12;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  return config;
}

text::IdfTable ServeIdf() {
  return text::IdfTable::Build({{"the", "movie", "was", "great"},
                                {"the", "plot", "was", "boring"},
                                {"brilliant", "acting"}});
}

Snapshot MakeSnapshot(uint64_t seed = 1) {
  Rng rng(seed);
  models::TransformerClassifier model(ServeConfig(), ServeVocab(), rng);
  model.SetTraining(false);
  return Snapshot::FromModel(model, ServeIdf());
}

const std::vector<std::string>& QueryTexts() {
  static const std::vector<std::string> texts = {
      "the movie was great", "the plot was boring", "brilliant acting",
      "a terrible movie of boring acting"};
  return texts;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------------
// Snapshot round trip

TEST(SnapshotTest, SaveLoadRoundTripsBitIdenticalLogits) {
  const Snapshot original = MakeSnapshot();
  const std::string path = TempPath("serve_roundtrip.rsnap");
  ASSERT_TRUE(original.Save(path).ok());

  auto loaded = Snapshot::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  auto before = InferenceSession::Create(original);
  auto after = InferenceSession::Create(loaded.value());
  ASSERT_TRUE(before.ok()) << before.status().message();
  ASSERT_TRUE(after.ok()) << after.status().message();

  const Tensor a = before.value()->Logits(QueryTexts());
  const Tensor b = after.value()->Logits(QueryTexts());
  ASSERT_EQ(a.shape(), b.shape());
  // Bit-identical, not approximately equal: the format stores raw IEEE-754
  // bytes and fixed-width integers, so nothing is lost in the round trip.
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
  std::remove(path.c_str());
}

TEST(SnapshotTest, RoundTripPreservesConfigVocabAndIdf) {
  const Snapshot original = MakeSnapshot();
  const std::string path = TempPath("serve_sections.rsnap");
  ASSERT_TRUE(original.Save(path).ok());
  auto loaded = Snapshot::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  const auto& got = loaded.value();
  EXPECT_EQ(got.config.num_classes, original.config.num_classes);
  EXPECT_EQ(got.config.max_len, original.config.max_len);
  EXPECT_EQ(got.config.dim, original.config.dim);
  EXPECT_EQ(got.vocab->size(), original.vocab->size());
  for (const char* w : {"movie", "brilliant", "terrible"})
    EXPECT_TRUE(got.vocab->Contains(w)) << w;

  EXPECT_EQ(got.idf.num_documents(), original.idf.num_documents());
  EXPECT_EQ(got.idf.max_idf(), original.idf.max_idf());
  const auto want_entries = original.idf.SortedEntries();
  const auto got_entries = got.idf.SortedEntries();
  ASSERT_EQ(got_entries.size(), want_entries.size());
  for (size_t i = 0; i < want_entries.size(); ++i) {
    EXPECT_EQ(got_entries[i].first, want_entries[i].first);
    EXPECT_EQ(got_entries[i].second, want_entries[i].second);  // bit-exact
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Snapshot::Load error paths: every malformed input is a Status, not an abort.

TEST(SnapshotTest, LoadMissingFileReturnsStatus) {
  auto result = Snapshot::Load(TempPath("serve_no_such_file.rsnap"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("cannot open"), std::string::npos)
      << result.status().message();
}

TEST(SnapshotTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("serve_bad_magic.rsnap");
  WriteFileBytes(path, "definitely not a snapshot file at all");
  auto result = Snapshot::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("bad magic"), std::string::npos)
      << result.status().message();
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadRejectsUnsupportedVersion) {
  const std::string path = TempPath("serve_bad_version.rsnap");
  ASSERT_TRUE(MakeSnapshot().Save(path).ok());
  std::string bytes = ReadFileBytes(path);
  // Header layout: 8-byte magic, then the u32 format version.
  ASSERT_GT(bytes.size(), 12u);
  bytes[8] = static_cast<char>(0x7f);
  WriteFileBytes(path, bytes);
  auto result = Snapshot::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unsupported snapshot version"),
            std::string::npos)
      << result.status().message();
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadRejectsTruncatedFile) {
  const std::string path = TempPath("serve_truncated.rsnap");
  ASSERT_TRUE(MakeSnapshot().Save(path).ok());
  const std::string bytes = ReadFileBytes(path);
  // Chop mid-payload and, separately, mid-header.
  WriteFileBytes(path, bytes.substr(0, bytes.size() / 2));
  auto mid_payload = Snapshot::Load(path);
  ASSERT_FALSE(mid_payload.ok());
  EXPECT_NE(mid_payload.status().message().find("truncated"),
            std::string::npos)
      << mid_payload.status().message();

  WriteFileBytes(path, bytes.substr(0, 10));
  auto mid_header = Snapshot::Load(path);
  ASSERT_FALSE(mid_header.ok());
  EXPECT_NE(mid_header.status().message().find("truncated"),
            std::string::npos)
      << mid_header.status().message();
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadDetectsBitCorruptionViaChecksum) {
  const std::string path = TempPath("serve_corrupt.rsnap");
  ASSERT_TRUE(MakeSnapshot().Save(path).ok());
  std::string bytes = ReadFileBytes(path);
  // Flip one bit deep in the payload (past the 28-byte header).
  ASSERT_GT(bytes.size(), 128u);
  bytes[bytes.size() - 64] ^= 0x01;
  WriteFileBytes(path, bytes);
  auto result = Snapshot::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum mismatch"),
            std::string::npos)
      << result.status().message();
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadRejectsTrailingBytes) {
  const std::string path = TempPath("serve_trailing.rsnap");
  ASSERT_TRUE(MakeSnapshot().Save(path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes += "extra";
  WriteFileBytes(path, bytes);
  auto result = Snapshot::Load(path);
  ASSERT_FALSE(result.ok()) << "trailing bytes must not be ignored";
  std::remove(path.c_str());
}

TEST(SnapshotTest, BuildModelRejectsMismatchedWeights) {
  Snapshot snapshot = MakeSnapshot();
  ASSERT_FALSE(snapshot.weights.empty());
  snapshot.weights[0].first += "_renamed";
  auto result = snapshot.BuildModel();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("snapshot weight"),
            std::string::npos)
      << result.status().message();

  Snapshot missing = MakeSnapshot();
  missing.weights.pop_back();
  auto short_result = missing.BuildModel();
  ASSERT_FALSE(short_result.ok());
}

// ---------------------------------------------------------------------------
// Quantized snapshots (format v2) and the int8 serving path

TEST(QuantizedSnapshotTest, FloatSnapshotsStillWriteFormatVersion1) {
  // Backward-compat pin: an all-float snapshot must keep producing files
  // that pre-quantization readers (which only accept version 1) can load.
  const std::string path = TempPath("serve_v1_pin.rsnap");
  ASSERT_TRUE(MakeSnapshot().Save(path).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), 12u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[8]), 1);  // u32 version, little-endian
  EXPECT_EQ(static_cast<uint8_t>(bytes[9]), 0);
  auto loaded = Snapshot::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(loaded.value().qweights.empty());
  std::remove(path.c_str());
}

TEST(QuantizedSnapshotTest, QuantizeReportsEveryTensorOnce) {
  std::vector<serve::TensorQuantReport> report;
  auto quantized = serve::QuantizeSnapshot(MakeSnapshot(), &report);
  ASSERT_TRUE(quantized.ok()) << quantized.status().message();

  const Snapshot original = MakeSnapshot();
  ASSERT_EQ(report.size(), original.weights.size());
  size_t num_quantized = 0;
  for (const auto& e : report) {
    if (e.quantized) {
      ++num_quantized;
      EXPECT_GT(e.rows, 0);
      EXPECT_GT(e.cols, 0);
      EXPECT_GE(e.error.max_abs, e.error.mean_abs);
    }
  }
  // ServeConfig has one layer: 4 attention + 2 FFN projections + the head.
  EXPECT_EQ(num_quantized, 7u);
  EXPECT_EQ(quantized.value().qweights.size(), 7u);
  EXPECT_EQ(quantized.value().weights.size() +
                quantized.value().qweights.size(),
            original.weights.size());

  // Quantizing twice is an input error, not a silent re-quantization.
  auto again = serve::QuantizeSnapshot(quantized.value());
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.status().message().find("already quantized"),
            std::string::npos)
      << again.status().message();
}

TEST(QuantizedSnapshotTest, V2RoundTripPreservesCodesBitIdentically) {
  auto quantized = serve::QuantizeSnapshot(MakeSnapshot());
  ASSERT_TRUE(quantized.ok());
  const std::string path = TempPath("serve_v2_roundtrip.rsnap");
  ASSERT_TRUE(quantized.value().Save(path).ok());

  const std::string bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), 12u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[8]), 2);  // format version 2

  auto loaded = Snapshot::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded.value().qweights.size(),
            quantized.value().qweights.size());
  for (size_t i = 0; i < loaded.value().qweights.size(); ++i) {
    const auto& [name, got] = loaded.value().qweights[i];
    const auto& [want_name, want] = quantized.value().qweights[i];
    EXPECT_EQ(name, want_name);
    EXPECT_EQ(got.transposed, want.transposed);
    EXPECT_EQ(got.tensor.rows, want.tensor.rows);
    EXPECT_EQ(got.tensor.cols, want.tensor.cols);
    EXPECT_EQ(got.tensor.data, want.tensor.data);
    EXPECT_EQ(got.tensor.scales, want.tensor.scales);
    EXPECT_EQ(got.tensor.zero_points, want.tensor.zero_points);
  }
  ASSERT_EQ(loaded.value().weights.size(), quantized.value().weights.size());
  std::remove(path.c_str());
}

TEST(QuantizedSnapshotTest, V2LoadRejectsTruncationAndCorruption) {
  auto quantized = serve::QuantizeSnapshot(MakeSnapshot());
  ASSERT_TRUE(quantized.ok());
  const std::string path = TempPath("serve_v2_damage.rsnap");
  ASSERT_TRUE(quantized.value().Save(path).ok());
  const std::string bytes = ReadFileBytes(path);

  WriteFileBytes(path, bytes.substr(0, bytes.size() - 48));
  auto truncated = Snapshot::Load(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().message().find("truncated"), std::string::npos)
      << truncated.status().message();

  std::string corrupt = bytes;
  corrupt[corrupt.size() - 64] ^= 0x10;  // flip one payload bit
  WriteFileBytes(path, corrupt);
  auto mismatch = Snapshot::Load(path);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.status().message().find("checksum mismatch"),
            std::string::npos)
      << mismatch.status().message();
  std::remove(path.c_str());
}

TEST(QuantizedSnapshotTest, BuildModelDequantizesCloseToFloatModel) {
  const Snapshot original = MakeSnapshot();
  auto quantized = serve::QuantizeSnapshot(original);
  ASSERT_TRUE(quantized.ok());

  // BuildModel on a v2 snapshot reconstitutes a float model from the int8
  // weights; its logits track the original within quantization error.
  auto float_session = InferenceSession::Create(original);
  InferenceSession::Options f32;
  f32.precision = InferenceSession::Precision::kFloat32;
  auto deq_session = InferenceSession::Create(quantized.value(), f32);
  ASSERT_TRUE(float_session.ok()) << float_session.status().message();
  ASSERT_TRUE(deq_session.ok()) << deq_session.status().message();
  EXPECT_FALSE(deq_session.value()->quantized());

  const Tensor a = float_session.value()->Logits(QueryTexts());
  const Tensor b = deq_session.value()->Logits(QueryTexts());
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 0.05f) << i;
}

TEST(QuantizedSessionTest, PrecisionModesSelectTheForward) {
  const Snapshot float_snapshot = MakeSnapshot();
  auto quantized = serve::QuantizeSnapshot(float_snapshot);
  ASSERT_TRUE(quantized.ok());

  // kAuto follows the snapshot.
  auto auto_f32 = InferenceSession::Create(float_snapshot);
  auto auto_int8 = InferenceSession::Create(quantized.value());
  ASSERT_TRUE(auto_f32.ok()) << auto_f32.status().message();
  ASSERT_TRUE(auto_int8.ok()) << auto_int8.status().message();
  EXPECT_FALSE(auto_f32.value()->quantized());
  EXPECT_TRUE(auto_int8.value()->quantized());

  // kInt8 on a float snapshot quantizes at session build time.
  InferenceSession::Options int8;
  int8.precision = InferenceSession::Precision::kInt8;
  auto forced = InferenceSession::Create(float_snapshot, int8);
  ASSERT_TRUE(forced.ok()) << forced.status().message();
  EXPECT_TRUE(forced.value()->quantized());

  // The int8 forward approximates the float forward within quantization
  // error and is deterministic (exact integer GEMM, eval-mode-only ops).
  const Tensor f = auto_f32.value()->Logits(QueryTexts());
  const Tensor q1 = auto_int8.value()->Logits(QueryTexts());
  const Tensor q2 = forced.value()->Logits(QueryTexts());
  ASSERT_EQ(f.shape(), q1.shape());
  for (int64_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(f[i], q1[i], 0.25f) << i;
    EXPECT_EQ(q1[i], q2[i]) << i;  // same codes either way it was quantized
  }
  const Tensor q3 = auto_int8.value()->Logits(QueryTexts());
  for (int64_t i = 0; i < q1.size(); ++i) EXPECT_EQ(q1[i], q3[i]) << i;
}

TEST(QuantizedSessionTest, QuantizedForwardBumpsTheCounter) {
  auto quantized = serve::QuantizeSnapshot(MakeSnapshot());
  ASSERT_TRUE(quantized.ok());
  auto session = InferenceSession::Create(quantized.value());
  ASSERT_TRUE(session.ok());
  const uint64_t before = obs::GetCounter("serve.quantized").Value();
  session.value()->PredictBatch(QueryTexts());
  session.value()->PredictBatch(QueryTexts());
  EXPECT_EQ(obs::GetCounter("serve.quantized").Value(), before + 2);
}

TEST(QuantizedSessionTest, ServesThroughTheBatchingServer) {
  auto quantized = serve::QuantizeSnapshot(MakeSnapshot());
  ASSERT_TRUE(quantized.ok());
  auto session = InferenceSession::Create(quantized.value());
  ASSERT_TRUE(session.ok());
  const auto direct = session.value()->PredictBatch(QueryTexts());

  BatchingServer server(session.value().get());
  for (size_t i = 0; i < QueryTexts().size(); ++i) {
    auto result = server.Predict(QueryTexts()[i]);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result.value().label, direct[i].label);
    ASSERT_EQ(result.value().probs.size(), direct[i].probs.size());
    for (size_t c = 0; c < direct[i].probs.size(); ++c)
      EXPECT_EQ(result.value().probs[c], direct[i].probs[c]) << i << "," << c;
  }
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// InferenceSession

TEST(InferenceSessionTest, PredictBatchReturnsArgmaxAndDistribution) {
  auto session = InferenceSession::Create(MakeSnapshot());
  ASSERT_TRUE(session.ok()) << session.status().message();
  const auto predictions = session.value()->PredictBatch(QueryTexts());
  ASSERT_EQ(predictions.size(), QueryTexts().size());
  for (const auto& p : predictions) {
    ASSERT_EQ(p.probs.size(), 3u);
    float sum = 0.0f;
    size_t argmax = 0;
    for (size_t c = 0; c < p.probs.size(); ++c) {
      sum += p.probs[c];
      if (p.probs[c] > p.probs[argmax]) argmax = c;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    EXPECT_EQ(static_cast<size_t>(p.label), argmax);
  }
}

TEST(InferenceSessionTest, RepeatQueriesHitTheEncodingCache) {
  auto session = InferenceSession::Create(MakeSnapshot());
  ASSERT_TRUE(session.ok()) << session.status().message();
  session.value()->PredictBatch(QueryTexts());
  const auto cold = session.value()->CacheStats();
  session.value()->PredictBatch(QueryTexts());
  const auto warm = session.value()->CacheStats();
  EXPECT_EQ(cold.misses, QueryTexts().size());
  EXPECT_EQ(warm.misses, cold.misses);
  EXPECT_GE(warm.hits, cold.hits + QueryTexts().size());
}

TEST(InferenceSessionTest, OpenReportsLoadErrors) {
  auto session = InferenceSession::Open(TempPath("serve_absent.rsnap"));
  ASSERT_FALSE(session.ok());
  EXPECT_NE(session.status().message().find("cannot open"), std::string::npos);
}

// ---------------------------------------------------------------------------
// BatchingServer

// The TSan-swept concurrency shape from ISSUE acceptance: 8 closed-loop
// client threads against one server; every coalesced answer must equal the
// serial single-request answer for the same text (eval-mode forwards are
// deterministic and rows are independent, so co-batching must not change
// results).
TEST(BatchingServerTest, EightThreadsGetSerialIdenticalResults) {
  auto session = InferenceSession::Create(MakeSnapshot());
  ASSERT_TRUE(session.ok()) << session.status().message();

  // Serial reference answers, one text per forward.
  std::vector<Prediction> expected;
  for (const auto& text : QueryTexts()) {
    auto one = session.value()->PredictBatch(
        std::span<const std::string>(&text, 1));
    ASSERT_EQ(one.size(), 1u);
    expected.push_back(one[0]);
  }

  BatchingServer::Options options;
  options.max_batch = 16;
  options.max_delay_us = 500;
  // Run the full observability surface under the concurrent load: the live
  // /metrics listener and the flight recorder (sampling every request) must
  // not perturb batching or results — this is the shape the TSan sweep in
  // scripts/check.sh replays.
  options.obs_http.enabled = true;
  options.servelog_dir = ::testing::TempDir();
  options.servelog_sample = 1;
  BatchingServer server(session.value().get(), options);
  EXPECT_NE(server.obs_http_port(), 0);
  ASSERT_NE(server.servelog(), nullptr);
  const std::string servelog_path = server.servelog()->path();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 32;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const size_t q = static_cast<size_t>(t + i) % QueryTexts().size();
        auto result = server.Predict(QueryTexts()[q]);
        if (!result.ok() || result.value().label != expected[q].label ||
            result.value().probs != expected[q].probs) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  server.Shutdown();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << t;

  const auto stats = server.GetStats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GT(stats.batches, 0u);
  // Coalescing must actually happen under 8-way concurrent load.
  EXPECT_LT(stats.batches, stats.requests);

  // With sample=1, every request produced exactly one flight-recorder
  // event: ids are dense 1..N even though 8 clients raced to submit.
  std::ifstream log(servelog_path);
  ASSERT_TRUE(log.good()) << servelog_path;
  int request_events = 0;
  std::string line;
  while (std::getline(log, line)) {
    if (line.find("\"event\": \"request\"") != std::string::npos)
      ++request_events;
  }
  EXPECT_EQ(request_events, kThreads * kPerThread);
  std::remove(servelog_path.c_str());
}

TEST(BatchingServerTest, ShutdownDrainsEveryPendingFuture) {
  auto session = InferenceSession::Create(MakeSnapshot());
  ASSERT_TRUE(session.ok()) << session.status().message();
  // A huge delay and batch bound park submissions in the queue so Shutdown()
  // races real pending work.
  BatchingServer::Options options;
  options.max_batch = 1024;
  options.max_delay_us = 60 * 1000 * 1000;
  BatchingServer server(session.value().get(), options);

  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(
        server.Submit(QueryTexts()[static_cast<size_t>(i) %
                                   QueryTexts().size()]));
  }
  server.Shutdown();
  for (auto& f : futures) {
    auto result = f.get();  // must not hang
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result.value().probs.size(), 3u);
  }
}

TEST(BatchingServerTest, SubmitAfterShutdownResolvesToError) {
  auto session = InferenceSession::Create(MakeSnapshot());
  ASSERT_TRUE(session.ok()) << session.status().message();
  BatchingServer server(session.value().get());
  server.Shutdown();
  server.Shutdown();  // idempotent
  auto result = server.Submit("the movie was great").get();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("shut down"), std::string::npos)
      << result.status().message();
}

TEST(BatchingServerTest, DestructorResolvesOutstandingFutures) {
  auto session = InferenceSession::Create(MakeSnapshot());
  ASSERT_TRUE(session.ok()) << session.status().message();
  std::vector<std::future<StatusOr<Prediction>>> futures;
  {
    BatchingServer::Options options;
    options.max_delay_us = 60 * 1000 * 1000;
    BatchingServer server(session.value().get(), options);
    for (int i = 0; i < 8; ++i)
      futures.push_back(server.Submit("brilliant acting"));
  }  // destructor == Shutdown()
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
}

// ---------------------------------------------------------------------------
// rotom::api facade

data::TaskDataset TinyApiDataset() {
  data::TextClsOptions options;
  options.train_size = 16;
  options.test_size = 24;
  options.unlabeled_size = 32;
  options.seed = 11;
  return data::MakeTextClsDataset("sst2", options);
}

eval::ExperimentOptions TinyApiOptions() {
  eval::ExperimentOptions options;
  options.classifier.max_len = 16;
  options.classifier.dim = 16;
  options.classifier.num_heads = 2;
  options.classifier.num_layers = 1;
  options.classifier.ffn_dim = 32;
  options.pretrain.epochs = 1;
  options.pretrain.max_corpus = 32;
  options.epochs = 2;
  options.batch_size = 8;
  return options;
}

TEST(ApiTest, TrainRejectsEmptyTrainSet) {
  api::TrainSpec spec;
  spec.dataset = TinyApiDataset();
  spec.dataset.train.clear();
  auto report = api::Train(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("train is empty"),
            std::string::npos)
      << report.status().message();
}

TEST(ApiTest, TrainRejectsDegenerateClassCount) {
  api::TrainSpec spec;
  spec.dataset = TinyApiDataset();
  spec.dataset.num_classes = 1;
  auto report = api::Train(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("num_classes"), std::string::npos)
      << report.status().message();
}

TEST(ApiTest, TrainRejectsOutOfRangeLabels) {
  api::TrainSpec spec;
  spec.dataset = TinyApiDataset();
  spec.dataset.train[3].label = spec.dataset.num_classes + 5;
  auto report = api::Train(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("label"), std::string::npos)
      << report.status().message();
}

// The full facade lifecycle at test scale: Train -> Snapshot::Save ->
// InferenceSession::Open -> PredictBatch, with the session serving the
// training-time logits bit for bit.
TEST(ApiTest, TrainExportServeLifecycle) {
  api::TrainSpec spec;
  spec.dataset = TinyApiDataset();
  spec.method = eval::Method::kBaseline;  // fastest method; facade is the DUT
  spec.options = TinyApiOptions();
  spec.seed = 5;
  auto report = api::Train(spec);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GE(report.value().metrics.test_metric, 0.0);
  EXPECT_LE(report.value().metrics.test_metric, 100.0);

  const std::string path = TempPath("serve_api_lifecycle.rsnap");
  ASSERT_TRUE(report.value().snapshot.Save(path).ok());

  auto direct = api::InferenceSession::Create(report.value().snapshot);
  auto opened = api::InferenceSession::Open(path);
  ASSERT_TRUE(direct.ok()) << direct.status().message();
  ASSERT_TRUE(opened.ok()) << opened.status().message();

  std::vector<std::string> queries;
  for (size_t i = 0; i < 5 && i < spec.dataset.test.size(); ++i)
    queries.push_back(spec.dataset.test[i].text);
  const Tensor a = direct.value()->Logits(queries);
  const Tensor b = opened.value()->Logits(queries);
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;

  const auto predictions = opened.value()->PredictBatch(queries);
  ASSERT_EQ(predictions.size(), queries.size());
  for (const auto& p : predictions) {
    EXPECT_GE(p.label, 0);
    EXPECT_LT(p.label, spec.dataset.num_classes);
    EXPECT_EQ(p.probs.size(),
              static_cast<size_t>(spec.dataset.num_classes));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rotom
