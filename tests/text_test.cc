#include <gtest/gtest.h>

#include "text/idf.h"
#include "text/records.h"
#include "text/tokenizer.h"
#include "text/vocab.h"

namespace rotom {
namespace {

using text::Encoded;
using text::Record;
using text::SpecialTokens;
using text::Vocabulary;

TEST(VocabularyTest, SpecialsHaveFixedIds) {
  Vocabulary v;
  EXPECT_EQ(v.Id("[PAD]"), SpecialTokens::kPad);
  EXPECT_EQ(v.Id("[UNK]"), SpecialTokens::kUnk);
  EXPECT_EQ(v.Id("[CLS]"), SpecialTokens::kCls);
  EXPECT_EQ(v.Id("[SEP]"), SpecialTokens::kSep);
  EXPECT_EQ(v.Id("[MASK]"), SpecialTokens::kMask);
  EXPECT_EQ(v.Id("[COL]"), SpecialTokens::kCol);
  EXPECT_EQ(v.Id("[VAL]"), SpecialTokens::kVal);
  EXPECT_EQ(v.size(), SpecialTokens::kCount);
}

TEST(VocabularyTest, UnknownMapsToUnk) {
  Vocabulary v;
  EXPECT_EQ(v.Id("zebra"), SpecialTokens::kUnk);
}

TEST(VocabularyTest, AddTokenIdempotent) {
  Vocabulary v;
  const int64_t id1 = v.AddToken("hello");
  const int64_t id2 = v.AddToken("hello");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(v.Token(id1), "hello");
}

TEST(VocabularyTest, BuildFromCorpusOrdersByFrequency) {
  std::vector<std::vector<std::string>> docs = {
      {"apple", "banana", "apple"}, {"apple", "cherry"}};
  Vocabulary v = Vocabulary::BuildFromCorpus(docs);
  // apple (3) comes before banana/cherry (1 each, tie broken alphabetically)
  EXPECT_EQ(v.Id("apple"), SpecialTokens::kCount);
  EXPECT_EQ(v.Id("banana"), SpecialTokens::kCount + 1);
  EXPECT_EQ(v.Id("cherry"), SpecialTokens::kCount + 2);
}

TEST(VocabularyTest, MaxSizeRespected) {
  std::vector<std::vector<std::string>> docs = {{"a", "b", "c", "d", "e"}};
  Vocabulary v = Vocabulary::BuildFromCorpus(docs, SpecialTokens::kCount + 2);
  EXPECT_EQ(v.size(), SpecialTokens::kCount + 2);
}

TEST(VocabularyTest, MinCountFiltersRareTokens) {
  std::vector<std::vector<std::string>> docs = {
      {"common", "common", "rare"}};
  Vocabulary v = Vocabulary::BuildFromCorpus(docs, 8192, 2);
  EXPECT_TRUE(v.Contains("common"));
  EXPECT_FALSE(v.Contains("rare"));
}

TEST(TokenizerTest, LowercasesAndSplits) {
  auto tokens = text::Tokenize("Hello World");
  EXPECT_EQ(tokens, (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, KeepsSpecialTokensWhole) {
  auto tokens = text::Tokenize("[COL] Name [VAL] Google LLC [SEP] x");
  EXPECT_EQ(tokens, (std::vector<std::string>{"[COL]", "name", "[VAL]",
                                              "google", "llc", "[SEP]", "x"}));
}

TEST(TokenizerTest, SplitsPunctuation) {
  auto tokens = text::Tokenize("great, really great!");
  EXPECT_EQ(tokens, (std::vector<std::string>{"great", ",", "really", "great",
                                              "!"}));
}

TEST(TokenizerTest, KeepsNumbersAndHyphenSplit) {
  auto tokens = text::Tokenize("ab-123 $59.99");
  EXPECT_EQ(tokens, (std::vector<std::string>{"ab", "-", "123", "$", "59", ".",
                                              "99"}));
}

TEST(TokenizerTest, BracketsWithoutUppercaseAreNotSpecial) {
  auto tokens = text::Tokenize("[abc]");
  EXPECT_EQ(tokens[0], "[");
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(text::Tokenize("").empty());
  EXPECT_TRUE(text::Tokenize("   \t\n").empty());
}

TEST(TokenizerTest, DetokenizeJoins) {
  EXPECT_EQ(text::Detokenize({"a", "b", "c"}), "a b c");
}

TEST(EncodeTest, ClassifierFormat) {
  Vocabulary v;
  v.AddToken("hello");
  v.AddToken("world");
  Encoded e = text::EncodeForClassifier(v, {"hello", "world"}, 6);
  EXPECT_EQ(e.ids[0], SpecialTokens::kCls);
  EXPECT_EQ(e.ids[1], v.Id("hello"));
  EXPECT_EQ(e.ids[2], v.Id("world"));
  EXPECT_EQ(e.ids[3], SpecialTokens::kSep);
  EXPECT_EQ(e.ids[4], SpecialTokens::kPad);
  EXPECT_EQ(e.mask, (std::vector<float>{1, 1, 1, 1, 0, 0}));
}

TEST(EncodeTest, TruncatesLongInput) {
  Vocabulary v;
  std::vector<std::string> tokens(20, "tok");
  v.AddToken("tok");
  Encoded e = text::EncodeForClassifier(v, tokens, 8);
  EXPECT_EQ(e.ids[0], SpecialTokens::kCls);
  EXPECT_EQ(e.ids[7], SpecialTokens::kSep);
  for (float m : e.mask) EXPECT_EQ(m, 1.0f);
}

TEST(EncodeTest, Seq2SeqUsesBosEos) {
  Vocabulary v;
  v.AddToken("x");
  Encoded e = text::EncodeForSeq2Seq(v, {"x"}, 4);
  EXPECT_EQ(e.ids[0], SpecialTokens::kBos);
  EXPECT_EQ(e.ids[1], v.Id("x"));
  EXPECT_EQ(e.ids[2], SpecialTokens::kEos);
}

TEST(EncodeTest, BatchShapes) {
  Vocabulary v;
  v.AddToken("a");
  auto batch = text::EncodeBatchForClassifier(v, {"a", "a a"}, 5);
  EXPECT_EQ(batch.batch, 2);
  EXPECT_EQ(batch.max_len, 5);
  EXPECT_EQ(batch.ids.size(), 10u);
  EXPECT_EQ(batch.mask.shape(), (std::vector<int64_t>{2, 5}));
  EXPECT_EQ(batch.mask.at({0, 2}), 1.0f);  // [CLS] a [SEP]
  EXPECT_EQ(batch.mask.at({0, 3}), 0.0f);
}

TEST(IdfTest, FrequentTokensHaveLowIdf) {
  std::vector<std::vector<std::string>> docs = {
      {"the", "cat"}, {"the", "dog"}, {"the", "fox"}, {"the", "cat"}};
  text::IdfTable idf = text::IdfTable::Build(docs);
  EXPECT_LT(idf.Idf("the"), idf.Idf("fox"));
  EXPECT_LT(idf.Idf("cat"), idf.Idf("fox"));
}

TEST(IdfTest, UnseenTokensAreImportant) {
  text::IdfTable idf = text::IdfTable::Build({{"a", "b"}, {"a"}});
  EXPECT_GE(idf.Idf("never_seen"), idf.Idf("b"));
}

TEST(IdfTest, CorruptionWeightInverts) {
  std::vector<std::vector<std::string>> docs = {
      {"the", "cat"}, {"the", "dog"}, {"the", "fox"}};
  text::IdfTable idf = text::IdfTable::Build(docs);
  // Unimportant "the" should be *more* likely to be corrupted.
  EXPECT_GT(idf.CorruptionWeight("the"), idf.CorruptionWeight("fox"));
}

TEST(IdfTest, SpecialTokensNeverCorrupted) {
  text::IdfTable idf = text::IdfTable::Build({{"a"}});
  EXPECT_EQ(idf.CorruptionWeight("[COL]"), 0.0);
  EXPECT_EQ(idf.CorruptionWeight("[SEP]"), 0.0);
}

TEST(RecordsTest, SerializeRecordFormat) {
  Record r;
  r.fields = {{"Name", "Google LLC"}, {"phone", "(866) 246-6453"}};
  EXPECT_EQ(text::SerializeRecord(r),
            "[COL] Name [VAL] Google LLC [COL] phone [VAL] (866) 246-6453");
}

TEST(RecordsTest, SerializeEntityPairUsesSep) {
  Record a, b;
  a.fields = {{"Name", "Google LLC"}};
  b.fields = {{"Name", "Alphabet inc"}};
  EXPECT_EQ(text::SerializeEntityPair(a, b),
            "[COL] Name [VAL] Google LLC [SEP] [COL] Name [VAL] Alphabet inc");
}

TEST(RecordsTest, SerializeCellFormat) {
  EXPECT_EQ(text::SerializeCell("phone", "6502530000"),
            "[COL] phone [VAL] 6502530000");
}

TEST(RecordsTest, SerializeRowContextAppendsCell) {
  Record r;
  r.fields = {{"Name", "Apple Inc."}, {"phone", "(408) 606-5775"}};
  const std::string s = text::SerializeRowContext(r, 1);
  EXPECT_NE(s.find("[SEP] [COL] phone [VAL] (408) 606-5775"),
            std::string::npos);
  EXPECT_NE(s.find("[COL] Name [VAL] Apple Inc."), std::string::npos);
}

TEST(RecordsTest, GetReturnsValueOrEmpty) {
  Record r;
  r.fields = {{"a", "1"}};
  EXPECT_EQ(r.Get("a"), "1");
  EXPECT_EQ(r.Get("b"), "");
}

}  // namespace
}  // namespace rotom
