#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rotom {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.Next64() == b.Next64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.Next64());
  a.Seed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next64(), first[i]);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(7);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, WeightedIndexPrefersHeavyWeight) {
  Rng rng(19);
  std::vector<double> w{0.05, 0.9, 0.05};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_GT(counts[1], counts[0] * 4);
  EXPECT_GT(counts[1], counts[2] * 4);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(23);
  std::vector<double> w{0.0, 0.0, 0.0, 0.0};
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.WeightedIndex(w));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  auto sample = rng.SampleWithoutReplacement(20, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<int64_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 10u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(31);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(37);
  Rng child = a.Fork();
  // Child stream should not equal continuing parent's stream.
  EXPECT_NE(child.Next64(), a.Next64());
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  foo\t bar\nbaz  "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLower("AbC123xYz"), "abc123xyz");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("[COL] name", "[COL]"));
  EXPECT_FALSE(StartsWith("x", "xy"));
  EXPECT_TRUE(EndsWith("model.bin", ".bin"));
  EXPECT_FALSE(EndsWith("a", "ab"));
}

TEST(StringUtilTest, EditDistanceBasics) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", "abc"), 0);
  EXPECT_EQ(EditDistance("abc", "abd"), 1);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("", "xyz"), 3);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::Error("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "boom");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::Error("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().message(), "nope");
}

TEST(CsvTest, ParseSimple) {
  auto table = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table.value().rows.size(), 2u);
  EXPECT_EQ(table.value().rows[1][1], "4");
}

TEST(CsvTest, ParseQuotedFields) {
  auto table = ParseCsv("name,desc\n\"x,y\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().rows[0][0], "x,y");
  EXPECT_EQ(table.value().rows[0][1], "say \"hi\"");
}

TEST(CsvTest, ParseEmbeddedNewline) {
  auto table = ParseCsv("a\n\"line1\nline2\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().rows[0][0], "line1\nline2");
}

TEST(CsvTest, RejectsRaggedRows) {
  auto table = ParseCsv("a,b\n1\n");
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto table = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, WriteParseRoundTrip) {
  CsvTable t;
  t.header = {"name", "value"};
  t.rows = {{"plain", "1"}, {"with,comma", "2"}, {"with\"quote", "3"}};
  auto parsed = ParseCsv(WriteCsv(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().header, t.header);
  EXPECT_EQ(parsed.value().rows, t.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable t;
  t.header = {"x"};
  t.rows = {{"1"}, {"2"}};
  const std::string path = ::testing::TempDir() + "/rotom_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, t).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().rows, t.rows);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  ASSERT_GT(sink, 0.0);
  EXPECT_GE(timer.Seconds(), 0.0);
  EXPECT_GE(timer.Millis(), timer.Seconds() * 999.0);
}

}  // namespace
}  // namespace rotom
