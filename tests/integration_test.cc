// Cross-module integration tests: checkpointing through disk, the pair-aware
// InvDA path in TaskContext, budget-restricted runs, and a miniature
// end-to-end Rotom pipeline built from the public API only.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "rotom.h"

namespace rotom {
namespace {

eval::ExperimentOptions TinyOptions(int64_t max_len) {
  eval::ExperimentOptions options;
  options.classifier.max_len = max_len;
  options.classifier.dim = 16;
  options.classifier.num_heads = 2;
  options.classifier.num_layers = 1;
  options.classifier.ffn_dim = 32;
  options.seq2seq.max_src_len = max_len;
  options.seq2seq.max_tgt_len = max_len;
  options.seq2seq.dim = 16;
  options.seq2seq.num_heads = 2;
  options.seq2seq.num_layers = 1;
  options.seq2seq.ffn_dim = 32;
  options.pretrain.epochs = 1;
  options.pretrain.max_corpus = 32;
  options.same_origin.steps = 10;
  options.invda.epochs = 1;
  options.invda.max_corpus = 24;
  options.invda.augments_per_example = 2;
  options.invda.sampling.max_len = max_len - 2;
  options.epochs = 2;
  options.batch_size = 8;
  return options;
}

TEST(CheckpointIntegrationTest, ClassifierSurvivesDiskRoundTrip) {
  Rng rng(1);
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w : {"alpha", "beta", "gamma"}) vocab->AddToken(w);
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 8;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  models::TransformerClassifier original(config, vocab, rng);
  original.SetTraining(false);

  const std::string path = ::testing::TempDir() + "/classifier_ckpt.bin";
  ASSERT_TRUE(SaveTensors(path, original.StateDict()).ok());

  models::TransformerClassifier restored(config, vocab, rng);
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  restored.LoadStateDict(loaded.value());
  restored.SetTraining(false);

  Rng r1(0), r2(0);
  Tensor a = original.PredictProbs({"alpha beta gamma"}, r1);
  Tensor b = restored.PredictProbs({"alpha beta gamma"}, r2);
  EXPECT_TRUE(a.AllClose(b));
}

TEST(TaskContextIntegrationTest, PairInvDaKeepsLeftRecordIntact) {
  data::EmOptions ds_options;
  ds_options.budget = 24;
  ds_options.test_size = 16;
  ds_options.unlabeled_size = 40;
  ds_options.seed = 2;
  auto ds = data::MakeEmDataset("dblp_acm", ds_options);
  eval::TaskContext context(ds, TinyOptions(40));
  context.EnsureInvDa();

  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    const std::string& pair = ds.train[i].text;
    const std::string augmented = context.InvDaSample(pair, rng);
    const std::string left = pair.substr(0, pair.find(" [SEP] "));
    EXPECT_EQ(augmented.substr(0, left.size()), left) << pair;
    EXPECT_NE(augmented.find(" [SEP] "), std::string::npos);
  }
}

TEST(TaskContextIntegrationTest, RunWithBudgetUsesPrefix) {
  data::TextClsOptions ds_options;
  ds_options.train_size = 40;
  ds_options.test_size = 30;
  ds_options.unlabeled_size = 40;
  ds_options.seed = 4;
  auto ds = data::MakeTextClsDataset("sst2", ds_options);
  eval::TaskContext context(ds, TinyOptions(16));
  // Budget larger than the sample falls back to the full run.
  auto full = context.RunWithBudget(eval::Method::kBaseline, 1, 1000);
  auto same = context.Run(eval::Method::kBaseline, 1);
  EXPECT_DOUBLE_EQ(full.test_metric, same.test_metric);
  // A smaller budget still produces a valid run.
  auto small = context.RunWithBudget(eval::Method::kBaseline, 1, 10);
  EXPECT_GE(small.test_metric, 0.0);
  EXPECT_LE(small.test_metric, 100.0);
}

TEST(TaskContextIntegrationTest, MetricSelectionByTaskShape) {
  data::TextClsOptions t;
  t.train_size = 8;
  t.test_size = 8;
  t.unlabeled_size = 8;
  EXPECT_EQ(eval::TaskContext(data::MakeTextClsDataset("sst2", t),
                              TinyOptions(12))
                .metric(),
            eval::MetricKind::kAccuracy);
  data::EdtOptions e;
  e.budget = 16;
  e.table_rows = 60;
  EXPECT_EQ(
      eval::TaskContext(data::MakeEdtDataset("beers", e), TinyOptions(12))
          .metric(),
      eval::MetricKind::kF1);
  data::EmOptions m;
  m.budget = 16;
  m.test_size = 8;
  m.unlabeled_size = 16;
  EXPECT_EQ(
      eval::TaskContext(data::MakeEmDataset("abt_buy", m), TinyOptions(40))
          .metric(),
      eval::MetricKind::kF1);
}

TEST(EndToEndTest, PublicApiPipelineOnTinySentiment) {
  // The README's 20-line pipeline, end to end, with assertions.
  data::TaskDataset ds;
  ds.name = "tiny-e2e";
  ds.num_classes = 2;
  const char* pos[] = {"great fantastic movie", "really great movie",
                       "wonderful fantastic product", "great great product"};
  const char* neg[] = {"terrible boring movie", "really awful movie",
                       "awful boring product", "terrible awful product"};
  for (int rep = 0; rep < 3; ++rep) {
    for (const char* t : pos) ds.train.push_back({t, 1});
    for (const char* t : neg) ds.train.push_back({t, 0});
  }
  ds.valid = ds.train;
  // In-distribution held-out combinations of training vocabulary.
  ds.test = {{"really fantastic movie", 1},
             {"really boring movie", 0},
             {"great wonderful product", 1},
             {"awful terrible product", 0},
             {"fantastic great movie", 1},
             {"boring awful movie", 0},
             {"really great product", 1},
             {"really terrible product", 0}};
  for (const auto& e : ds.train) ds.unlabeled.push_back(e.text);

  auto vocab = eval::BuildTaskVocabulary(ds);
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 8;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  Rng rng(5);
  models::TransformerClassifier model(config, vocab, rng);

  core::RotomOptions options;
  options.epochs = 8;
  options.batch_size = 8;
  options.seed = 6;
  core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto result =
      trainer.Train(ds, [](const std::string& text, Rng& r) {
        return std::vector<std::string>{augment::AugmentText(
            text, augment::OperatorRegistry::Global().Require("token_del"), {},
            r)};
      });
  EXPECT_GE(result.best_valid_metric, 90.0);
  EXPECT_GE(eval::EvaluateModel(model, ds.test, eval::MetricKind::kAccuracy),
            75.0);
}

}  // namespace
}  // namespace rotom
