// Tests for the serving observability listener (serve/obs_http.h): a raw
// loopback-socket client scrapes /metrics, /healthz, and /snapshotz from a
// live server, covering the acceptance contract — the Prometheus text
// carries the dotted catalog names in HELP lines, the request-lifecycle
// histograms appear, and per-tenant SLO instruments are scrapeable — plus
// the error paths (404/405) and the ROTOM_METRICS=off shape (200 with an
// empty exposition). The TSan sweep in scripts/check.sh re-runs this
// binary: the listener thread, worker thread, and client threads must stay
// race-free together.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "rotom/api.h"

namespace rotom {
namespace {

using serve::BatchingServer;
using serve::InferenceSession;
using serve::ModelRegistry;
using serve::ObsHttpOptions;
using serve::ObsHttpServer;
using serve::Snapshot;
using serve::TenantServer;

#ifdef ROTOM_METRICS_DISABLED
#define SKIP_IF_METRICS_COMPILED_OUT() \
  GTEST_SKIP() << "built with ROTOM_DISABLE_METRICS"
#else
#define SKIP_IF_METRICS_COMPILED_OUT() static_cast<void>(0)
#endif

class ObsEnabledGuard {
 public:
  ObsEnabledGuard() : enabled_(obs::Enabled()) {}
  ~ObsEnabledGuard() { obs::SetEnabled(enabled_); }

 private:
  bool enabled_;
};

// Same bench-scale model the serve tests use.
Snapshot MakeSnapshot() {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w : {"the", "movie", "was", "great", "terrible", "plot"})
    vocab->AddToken(w);
  models::ClassifierConfig config;
  config.num_classes = 3;
  config.max_len = 12;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  Rng rng(1);
  models::TransformerClassifier model(config, vocab, rng);
  model.SetTraining(false);
  return Snapshot::FromModel(model);
}

// Minimal blocking HTTP/1.0-style client: send the raw request, read to
// EOF (the server always closes), return the full response.
std::string RawRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: l\r\n\r\n");
}

// The headers end at the first blank line; everything after is the body.
std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

TEST(ObsHttpTest, StandaloneEndpointsAndErrorPaths) {
  SKIP_IF_METRICS_COMPILED_OUT();
  ObsEnabledGuard guard;
  obs::SetEnabled(true);
  obs::GetCounter("obs_http.test.counter").Reset();
  obs::GetCounter("obs_http.test.counter").Add(5);

  ObsHttpOptions options;
  options.enabled = true;
  options.port = 0;  // ephemeral
  auto server = ObsHttpServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().message();
  const int port = server.value()->port();
  ASSERT_NE(port, 0);

  const std::string metrics = Get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find(obs::kPrometheusContentType), std::string::npos);
  // HELP lines carry the dotted catalog name; value lines the sanitized one.
  EXPECT_NE(metrics.find("obs_http.test.counter"), std::string::npos);
  EXPECT_NE(metrics.find("obs_http_test_counter 5\n"), std::string::npos);

  const std::string healthz = Get(port, "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(healthz), "ok\n");

  const std::string snapshotz = Get(port, "/snapshotz");
  EXPECT_NE(snapshotz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(snapshotz.find("application/json"), std::string::npos);
  EXPECT_NE(BodyOf(snapshotz).find("\"obs_http.test.counter\": 5"),
            std::string::npos)
      << snapshotz;

  EXPECT_NE(Get(port, "/nope").find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(RawRequest(port, "POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);

  server.value()->Stop();
  server.value()->Stop();  // idempotent
}

TEST(ObsHttpTest, MetricsOffStillServesValidEmptyExposition) {
  ObsEnabledGuard guard;
  obs::SetEnabled(false);
  ObsHttpOptions options;
  options.enabled = true;
  auto server = ObsHttpServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().message();
  const std::string metrics = Get(server.value()->port(), "/metrics");
  // ROTOM_METRICS=off keeps the endpoint alive (health checks, scrapers)
  // but the exposition is empty — same contract as obs::Snapshot().
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_TRUE(BodyOf(metrics).empty()) << metrics;
  // The liveness probe never depends on the metrics switch.
  EXPECT_EQ(BodyOf(Get(server.value()->port(), "/healthz")), "ok\n");
}

// The acceptance scrape: a live BatchingServer under traffic exposes the
// request-lifecycle decomposition, and a TenantServer exposes the
// per-tenant SLO instruments, all through one registry.
TEST(ObsHttpTest, LiveServerScrapeCarriesLifecycleAndSloMetrics) {
  SKIP_IF_METRICS_COMPILED_OUT();
  ObsEnabledGuard guard;
  obs::SetEnabled(true);

  const Snapshot snapshot = MakeSnapshot();
  auto session = InferenceSession::Create(snapshot);
  ASSERT_TRUE(session.ok()) << session.status().message();

  BatchingServer::Options options;
  options.max_batch = 8;
  options.max_delay_us = 200;
  options.obs_http.enabled = true;
  BatchingServer server(session.value().get(), options);
  ASSERT_NE(server.obs_http_port(), 0);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(server.Predict("the movie was great").ok());
  }

  const std::string scrape = Get(server.obs_http_port(), "/metrics");
  for (const char* dotted :
       {"serve.requests", "serve.queue_wait_us", "serve.compute_us",
        "serve.latency_us", "serve.batch_size"}) {
    EXPECT_NE(scrape.find(dotted), std::string::npos) << dotted;
  }
  EXPECT_NE(scrape.find("serve_queue_wait_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  server.Shutdown();
  // Shutdown stops the listener with the worker.
  EXPECT_EQ(server.obs_http_port(), 0);

  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("em", snapshot).ok());
  TenantServer::Options tenant_options;
  tenant_options.max_batch = 8;
  tenant_options.max_delay_us = 200;
  tenant_options.obs_http.enabled = true;
  TenantServer tenant_server(&registry, {"em"}, tenant_options);
  ASSERT_NE(tenant_server.obs_http_port(), 0);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(tenant_server.Predict("em", "terrible plot").ok());
  }
  const std::string tenant_scrape =
      Get(tenant_server.obs_http_port(), "/metrics");
  EXPECT_NE(tenant_scrape.find("serve.tenant.em.slo_violations"),
            std::string::npos);
  EXPECT_NE(tenant_scrape.find("serve.tenant.em.budget_remaining"),
            std::string::npos);
  EXPECT_NE(tenant_scrape.find("serve_tenant_em_requests"),
            std::string::npos);
  tenant_server.Shutdown();
}

}  // namespace
}  // namespace rotom
