// Tests for the extension features beyond the paper's core pipeline:
// CSV dataset loaders, beam-search decoding, the Section 8 noisy-label
// training direction, and context-dependent EDT serialization.

#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/label_cleaning.h"
#include "data/edt_gen.h"
#include "data/loader.h"
#include "models/seq2seq.h"
#include "nn/optim.h"

namespace rotom {
namespace {

std::string WriteTempFile(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  out << body;
  return path;
}

TEST(LoaderTest, TextClsCsv) {
  const std::string path = WriteTempFile(
      "textcls.csv",
      "text,label\n"
      "the movie was great,pos\n"
      "a boring movie,neg\n"
      "\"quoted, text\",pos\n");
  std::vector<std::string> label_names;
  auto examples = data::LoadTextClsCsv(path, "text", "label", &label_names);
  ASSERT_TRUE(examples.ok()) << examples.status().message();
  ASSERT_EQ(examples.value().size(), 3u);
  EXPECT_EQ(label_names, (std::vector<std::string>{"pos", "neg"}));
  EXPECT_EQ(examples.value()[0].label, 0);
  EXPECT_EQ(examples.value()[1].label, 1);
  EXPECT_EQ(examples.value()[2].text, "quoted, text");
}

TEST(LoaderTest, TextClsCsvMissingColumn) {
  const std::string path = WriteTempFile("bad.csv", "a,b\n1,2\n");
  auto examples = data::LoadTextClsCsv(path, "text", "label", nullptr);
  EXPECT_FALSE(examples.ok());
}

TEST(LoaderTest, EmPairsCsv) {
  data::EmCsvSpec spec;
  spec.left_table_path = WriteTempFile(
      "left.csv", "id,name,price\nl1,google llc,10\nl2,apple inc,20\n");
  spec.right_table_path = WriteTempFile(
      "right.csv", "id,name,price\nr1,alphabet inc,11\nr2,apple,21\n");
  spec.pairs_path = WriteTempFile(
      "pairs.csv",
      "ltable_id,rtable_id,label\nl1,r1,1\nl2,r2,1\nl1,r2,0\n");
  auto examples = data::LoadEmPairsCsv(spec);
  ASSERT_TRUE(examples.ok()) << examples.status().message();
  ASSERT_EQ(examples.value().size(), 3u);
  EXPECT_EQ(examples.value()[0].label, 1);
  EXPECT_EQ(examples.value()[2].label, 0);
  EXPECT_EQ(examples.value()[0].text,
            "[COL] name [VAL] google llc [COL] price [VAL] 10 [SEP] "
            "[COL] name [VAL] alphabet inc [COL] price [VAL] 11");
}

TEST(LoaderTest, EmPairsCsvUnknownIdFails) {
  data::EmCsvSpec spec;
  spec.left_table_path = WriteTempFile("l2.csv", "id,n\nl1,x\n");
  spec.right_table_path = WriteTempFile("r2.csv", "id,n\nr1,y\n");
  spec.pairs_path =
      WriteTempFile("p2.csv", "ltable_id,rtable_id,label\nl1,zzz,0\n");
  EXPECT_FALSE(data::LoadEmPairsCsv(spec).ok());
}

TEST(LoaderTest, EmPairsCsvBadLabelFails) {
  data::EmCsvSpec spec;
  spec.left_table_path = WriteTempFile("l3.csv", "id,n\nl1,x\n");
  spec.right_table_path = WriteTempFile("r3.csv", "id,n\nr1,y\n");
  spec.pairs_path =
      WriteTempFile("p3.csv", "ltable_id,rtable_id,label\nl1,r1,maybe\n");
  EXPECT_FALSE(data::LoadEmPairsCsv(spec).ok());
}

TEST(LoaderTest, EdtTableCsvWithGroundTruth) {
  const std::string dirty = WriteTempFile(
      "dirty.csv", "name,zip\nspringfield,12345\nsprxngfield,99\n");
  const std::string clean = WriteTempFile(
      "clean.csv", "name,zip\nspringfield,12345\nspringfield,12345\n");
  auto examples = data::LoadEdtTableCsv(dirty, clean);
  ASSERT_TRUE(examples.ok()) << examples.status().message();
  ASSERT_EQ(examples.value().size(), 4u);
  EXPECT_EQ(examples.value()[0].label, 0);
  EXPECT_EQ(examples.value()[2].label, 1);  // sprxngfield
  EXPECT_EQ(examples.value()[3].label, 1);  // 99
  EXPECT_EQ(examples.value()[0].text, "[COL] name [VAL] springfield");
}

TEST(LoaderTest, EdtTableCsvContextDependent) {
  const std::string dirty =
      WriteTempFile("dirty2.csv", "name,zip\nspringfield,12345\n");
  auto examples = data::LoadEdtTableCsv(dirty, "", /*context_dependent=*/true);
  ASSERT_TRUE(examples.ok());
  EXPECT_NE(examples.value()[1].text.find("[SEP] [COL] zip [VAL] 12345"),
            std::string::npos);
}

TEST(LoaderTest, EdtTableCsvShapeMismatchFails) {
  const std::string dirty = WriteTempFile("d3.csv", "a\n1\n2\n");
  const std::string clean = WriteTempFile("c3.csv", "a\n1\n");
  EXPECT_FALSE(data::LoadEdtTableCsv(dirty, clean).ok());
}

TEST(LoaderTest, MakeTaskDatasetSplits) {
  std::vector<data::Example> examples;
  for (int i = 0; i < 100; ++i)
    examples.push_back({"text " + std::to_string(i), i % 2});
  auto ds = data::MakeTaskDataset(examples, /*train=*/30, /*test=*/20, 2,
                                  false, false, /*seed=*/1, "custom");
  EXPECT_EQ(ds.train.size(), 30u);
  EXPECT_EQ(ds.test.size(), 20u);
  EXPECT_EQ(ds.unlabeled.size(), 50u);
  EXPECT_EQ(ds.valid.size(), ds.train.size());
  EXPECT_EQ(ds.name, "custom");
}

TEST(BeamSearchTest, ProducesVocabTokensDeterministically) {
  Rng rng(1);
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w : {"a", "b", "c", "d", "e"}) vocab->AddToken(w);
  models::Seq2SeqConfig config;
  config.max_src_len = 10;
  config.max_tgt_len = 10;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  models::Seq2SeqModel model(config, vocab, rng);
  model.SetTraining(false);
  const std::string out1 = model.GenerateBeam("a b c", 3, 6);
  const std::string out2 = model.GenerateBeam("a b c", 3, 6);
  EXPECT_EQ(out1, out2);  // beam search is deterministic
  for (const auto& token : text::Tokenize(out1))
    EXPECT_TRUE(vocab->Contains(token)) << token;
}

TEST(BeamSearchTest, TrainedCopyModelReconstructsInput) {
  Rng rng(2);
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w : {"red", "green", "blue", "cat", "dog"})
    vocab->AddToken(w);
  models::Seq2SeqConfig config;
  config.max_src_len = 8;
  config.max_tgt_len = 8;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  models::Seq2SeqModel model(config, vocab, rng);
  nn::Adam optimizer(model.Parameters(), 3e-3f);
  std::vector<std::pair<std::string, std::string>> pairs = {
      {"red cat", "red cat"}, {"green dog", "green dog"},
      {"blue cat", "blue cat"}, {"red dog", "red dog"}};
  model.SetTraining(true);
  for (int step = 0; step < 150; ++step) {
    optimizer.ZeroGrad();
    model.Loss(pairs, rng).Backward();
    optimizer.Step();
  }
  model.SetTraining(false);
  EXPECT_EQ(model.GenerateBeam("green dog", 3, 6), "green dog");
}

TEST(LabelCleaningTest, RunsAndFitsCleanValidation) {
  // 30% of training labels flipped; validation labels clean. The weighted
  // meta-training should still reach a reasonable accuracy on the clean
  // test set.
  Rng rng(3);
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w : {"the", "movie", "was", "great", "terrible", "really"})
    vocab->AddToken(w);
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 10;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  models::TransformerClassifier model(config, vocab, rng);

  data::TaskDataset ds;
  ds.name = "noisy";
  ds.num_classes = 2;
  Rng gen(4);
  for (int i = 0; i < 40; ++i) {
    const bool positive = i % 2 == 0;
    const std::string text = positive ? "the movie was really great"
                                      : "the movie was really terrible";
    int64_t label = positive ? 1 : 0;
    data::Example clean{text, label};
    ds.valid.push_back(clean);
    ds.test.push_back(clean);
    if (gen.Bernoulli(0.3)) label = 1 - label;  // inject label noise
    ds.train.push_back({text, label});
  }

  core::NoisyLabelOptions options;
  options.epochs = 6;
  options.batch_size = 8;
  options.seed = 5;
  auto result = core::TrainWithNoisyLabels(&model, eval::MetricKind::kAccuracy,
                                           ds, options);
  EXPECT_EQ(result.epochs_run, 6);
  EXPECT_GE(eval::EvaluateModel(model, ds.test, eval::MetricKind::kAccuracy),
            70.0);
}

TEST(EdtContextDependentTest, RowContextSerialization) {
  data::EdtOptions options;
  options.budget = 40;
  options.table_rows = 80;
  options.context_dependent = true;
  options.seed = 6;
  auto ds = data::MakeEdtDataset("beers", options);
  for (const auto& e : ds.train) {
    EXPECT_NE(e.text.find(" [SEP] [COL] "), std::string::npos);
  }
  // Same schema, same labels distribution as the cell-only variant.
  EXPECT_NEAR(data::LabelFraction(ds.train, 1), 0.5, 1e-9);
}

}  // namespace
}  // namespace rotom
