// Tests for the training data path's encode-once memo (text::EncodingCache):
// correctness against the uncached encoders, LRU capacity accounting,
// hit/miss/eviction counters, bypass mode, and thread-safety under a
// concurrent hammer (run under TSan by scripts/check.sh).

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "text/encoding_cache.h"
#include "text/tokenizer.h"
#include "text/vocab.h"

namespace rotom {
namespace {

std::shared_ptr<text::Vocabulary> TestVocab() {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w : {"the", "quick", "brown", "fox", "jumps", "over",
                        "lazy", "dog", "title", "year"})
    vocab->AddToken(w);
  return vocab;
}

std::string TextFor(int i) {
  return "the quick fox " + std::to_string(i) + " jumps over dog " +
         std::to_string(i % 3);
}

TEST(EncodingCacheTest, MatchesUncachedEncoder) {
  auto vocab = TestVocab();
  constexpr int64_t kMaxLen = 12;
  text::EncodingCache cache(vocab.get(), kMaxLen, /*capacity_rows=*/64);
  const std::string text = "the quick brown fox [SEP] the lazy dog";
  const auto row = cache.Encode(text);
  const text::EncodedRow direct =
      text::EncodeRowForClassifier(*vocab, text, kMaxLen);
  EXPECT_EQ(row->ids, direct.ids);
  EXPECT_EQ(row->mask, direct.mask);
  EXPECT_EQ(row->flags, direct.flags);
  // A second encode must serve the identical row object.
  EXPECT_EQ(cache.Encode(text).get(), row.get());
}

TEST(EncodingCacheTest, HitAndMissCounters) {
  auto vocab = TestVocab();
  text::EncodingCache cache(vocab.get(), /*max_len=*/10, /*capacity_rows=*/64);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) cache.Encode(TextFor(i));
  }
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 8u);
  EXPECT_EQ(stats.hits, 16u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.Size(), 8u);
}

TEST(EncodingCacheTest, CapacityBoundsSizeAndEvicts) {
  auto vocab = TestVocab();
  constexpr size_t kCapacity = 16;
  text::EncodingCache cache(vocab.get(), /*max_len=*/10, kCapacity);
  for (int i = 0; i < 200; ++i) cache.Encode(TextFor(i));
  EXPECT_LE(cache.Size(), kCapacity);
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 200u);
  EXPECT_GE(stats.evictions, 200u - kCapacity);
  // Eviction never breaks correctness: a re-encoded evicted row matches.
  const auto row = cache.Encode(TextFor(0));
  const auto direct =
      text::EncodeRowForClassifier(*vocab, TextFor(0), 10);
  EXPECT_EQ(row->ids, direct.ids);
}

TEST(EncodingCacheTest, LruKeepsRecentlyUsedRows) {
  auto vocab = TestVocab();
  // Single-digit per-shard capacity: capacity 8 over 8 shards = 1 row each,
  // so within a shard the older of two keys must be the one evicted.
  text::EncodingCache cache(vocab.get(), /*max_len=*/10, /*capacity_rows=*/8);
  const auto first = cache.Encode("the quick fox");
  // Touch it again, then insert enough distinct keys to force evictions.
  cache.Encode("the quick fox");
  for (int i = 0; i < 64; ++i) cache.Encode(TextFor(i));
  // Whatever was evicted, re-encoding still matches the direct encoder and
  // old row pointers stay valid (shared_ptr-backed rows).
  EXPECT_EQ(first->ids, text::EncodeRowForClassifier(*vocab, "the quick fox",
                                                     10).ids);
}

TEST(EncodingCacheTest, ZeroCapacityBypassesStorage) {
  auto vocab = TestVocab();
  text::EncodingCache cache(vocab.get(), /*max_len=*/10, /*capacity_rows=*/0);
  const std::string text = "the lazy dog";
  const auto a = cache.Encode(text);
  const auto b = cache.Encode(text);
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_NE(a.get(), b.get());  // nothing memoized
  EXPECT_EQ(a->ids, b->ids);
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(EncodingCacheTest, ClearDropsRowsKeepsCounters) {
  auto vocab = TestVocab();
  text::EncodingCache cache(vocab.get(), /*max_len=*/10, /*capacity_rows=*/64);
  for (int i = 0; i < 8; ++i) cache.Encode(TextFor(i));
  cache.Clear();
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_EQ(cache.GetStats().misses, 8u);
  cache.Encode(TextFor(0));
  EXPECT_EQ(cache.GetStats().misses, 9u);
}

TEST(EncodingCacheTest, AssembleMatchesBatchEncoder) {
  auto vocab = TestVocab();
  constexpr int64_t kMaxLen = 14;
  text::EncodingCache cache(vocab.get(), kMaxLen, /*capacity_rows=*/64);
  std::vector<std::string> texts = {
      "the quick brown fox",
      "the quick brown fox [SEP] the quick dog",
      "title year [SEP] title the year",
      "the quick brown fox",  // repeat: served from cache
  };
  // Warm the cache so assembly mixes hits and misses.
  cache.Encode(texts[0]);
  const text::EncodedBatch assembled = AssembleEncodedBatch(cache, texts);
  const text::EncodedBatch direct =
      text::EncodeBatchForClassifier(*vocab, texts, kMaxLen);
  EXPECT_EQ(assembled.batch, direct.batch);
  EXPECT_EQ(assembled.max_len, direct.max_len);
  EXPECT_EQ(assembled.ids, direct.ids);
  EXPECT_EQ(assembled.flags, direct.flags);
  ASSERT_EQ(assembled.mask.shape(), direct.mask.shape());
  for (int64_t i = 0; i < direct.mask.size(); ++i)
    EXPECT_EQ(assembled.mask.data()[i], direct.mask.data()[i]);
}

TEST(EncodingCacheTest, ConcurrentHammerStaysConsistent) {
  auto vocab = TestVocab();
  constexpr int64_t kMaxLen = 10;
  // Small capacity on purpose: threads race insertions against evictions.
  text::EncodingCache cache(vocab.get(), kMaxLen, /*capacity_rows=*/32);
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  constexpr int kKeys = 64;
  std::vector<text::EncodedRow> expected;
  for (int k = 0; k < kKeys; ++k)
    expected.push_back(text::EncodeRowForClassifier(*vocab, TextFor(k),
                                                    kMaxLen));
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int k = (i * (t + 1) + t * 17) % kKeys;
        const auto row = cache.Encode(TextFor(k));
        if (row->ids != expected[k].ids || row->flags != expected[k].flags)
          ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(cache.Size(), 32u);
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace rotom
