// Tests for the observability layer (src/obs): sharded counter/histogram
// aggregation under the compute pool, the runtime disable switch, snapshot
// rendering, and the scoped-span tracer's Chrome trace output. The TSan
// sweep in scripts/check.sh re-runs this binary at several pool sizes to
// check the write paths race-free.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace rotom {
namespace {

// These tests exercise the recording paths, which a ROTOM_DISABLE_METRICS
// build compiles to nothing — skip them there (the build itself is still
// covered: this file must compile either way).
#ifdef ROTOM_METRICS_DISABLED
#define SKIP_IF_METRICS_COMPILED_OUT() \
  GTEST_SKIP() << "built with ROTOM_DISABLE_METRICS"
#else
#define SKIP_IF_METRICS_COMPILED_OUT() static_cast<void>(0)
#endif

// Restores the metrics switch and trace path on scope exit so global obs
// state never leaks between tests.
class ObsStateGuard {
 public:
  ObsStateGuard() : enabled_(obs::Enabled()), path_(obs::TracePath()) {}
  ~ObsStateGuard() {
    obs::SetEnabled(enabled_);
    obs::SetTracePath(path_);
    obs::ClearTrace();
  }

 private:
  bool enabled_;
  std::string path_;
};

class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { SetComputeThreads(n); }
  ~ThreadGuard() { SetComputeThreads(0); }
};

std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ObsMetricsTest, CounterAggregatesAcrossPoolThreads) {
  SKIP_IF_METRICS_COMPILED_OUT();
  ObsStateGuard guard;
  obs::SetEnabled(true);

  // Single-thread reference total.
  obs::Counter& serial = obs::GetCounter("test.counter_serial");
  serial.Reset();
  constexpr int64_t kItems = 10000;
  for (int64_t i = 0; i < kItems; ++i) serial.Add(1);
  ASSERT_EQ(serial.Value(), static_cast<uint64_t>(kItems));

  // The same adds spread over a 4-thread pool must sum to the same total
  // even though writers land on different shards.
  ThreadGuard threads(4);
  obs::Counter& pooled = obs::GetCounter("test.counter_pooled");
  pooled.Reset();
  ComputePool().ParallelFor(kItems, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pooled.Add(1);
  });
  EXPECT_EQ(pooled.Value(), serial.Value());

  // Add(n) increments by n.
  pooled.Reset();
  pooled.Add(41);
  pooled.Add(1);
  EXPECT_EQ(pooled.Value(), 42u);
}

TEST(ObsMetricsTest, HistogramAggregatesAcrossPoolThreads) {
  SKIP_IF_METRICS_COMPILED_OUT();
  ObsStateGuard guard;
  obs::SetEnabled(true);

  obs::Histogram& serial = obs::GetHistogram("test.hist_serial");
  serial.Reset();
  constexpr int64_t kItems = 4096;
  for (int64_t i = 0; i < kItems; ++i)
    serial.Record(static_cast<uint64_t>(i % 257));

  ThreadGuard threads(4);
  obs::Histogram& pooled = obs::GetHistogram("test.hist_pooled");
  pooled.Reset();
  ComputePool().ParallelFor(kItems, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i)
      pooled.Record(static_cast<uint64_t>(i % 257));
  });

  EXPECT_EQ(pooled.Count(), serial.Count());
  EXPECT_EQ(pooled.Sum(), serial.Sum());
  EXPECT_EQ(pooled.BucketCounts(), serial.BucketCounts());
}

TEST(ObsMetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds zeros; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1024), 11u);
  // The last bucket absorbs overflow.
  EXPECT_EQ(obs::Histogram::BucketIndex(UINT64_MAX),
            obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(obs::Histogram::kBuckets - 1),
            UINT64_MAX);
}

TEST(ObsMetricsTest, HistogramQuantileUsesBucketUpperBounds) {
  SKIP_IF_METRICS_COMPILED_OUT();
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Histogram& hist = obs::GetHistogram("test.hist_quantile");
  hist.Reset();
  // 90 small values (bucket of 3 -> upper bound 3), 10 large (bucket of
  // 1000 -> upper bound 1023).
  for (int i = 0; i < 90; ++i) hist.Record(3);
  for (int i = 0; i < 10; ++i) hist.Record(1000);

  const auto snapshot = obs::Snapshot();
  const obs::MetricSnapshot* metric = nullptr;
  for (const auto& m : snapshot.metrics)
    if (m.name == "test.hist_quantile") metric = &m;
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(metric->count, 100u);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(*metric, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(*metric, 0.99), 1023.0);
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  SKIP_IF_METRICS_COMPILED_OUT();
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Gauge& gauge = obs::GetGauge("test.gauge");
  gauge.Reset();
  gauge.Set(100);
  EXPECT_EQ(gauge.Value(), 100);
  gauge.Add(-30);
  EXPECT_EQ(gauge.Value(), 70);
  gauge.Set(5);
  EXPECT_EQ(gauge.Value(), 5);
}

TEST(ObsMetricsTest, RegistryReturnsSameInstrumentAndSortsSnapshots) {
  SKIP_IF_METRICS_COMPILED_OUT();
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Counter& a = obs::GetCounter("test.same_name");
  obs::Counter& b = obs::GetCounter("test.same_name");
  EXPECT_EQ(&a, &b);

  obs::GetCounter("test.zz_last").Add(1);
  obs::GetCounter("test.aa_first").Add(1);
  const auto snapshot = obs::Snapshot();
  ASSERT_GE(snapshot.metrics.size(), 2u);
  for (size_t i = 1; i < snapshot.metrics.size(); ++i)
    EXPECT_LT(snapshot.metrics[i - 1].name, snapshot.metrics[i].name);
}

TEST(ObsMetricsTest, DisabledDropsWritesAndEmptiesSnapshot) {
  SKIP_IF_METRICS_COMPILED_OUT();
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::Counter& counter = obs::GetCounter("test.disabled_counter");
  obs::Histogram& hist = obs::GetHistogram("test.disabled_hist");
  counter.Reset();
  hist.Reset();

  obs::SetEnabled(false);
  counter.Add(7);
  hist.Record(7);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(hist.Count(), 0u);
  // ROTOM_METRICS=off contract: the scrape surface reports nothing at all.
  EXPECT_TRUE(obs::Snapshot().metrics.empty());
  EXPECT_EQ(obs::SnapshotJson(), "{}");

  obs::SetEnabled(true);
  counter.Add(7);
  EXPECT_EQ(counter.Value(), 7u);
}

TEST(ObsMetricsTest, SnapshotJsonRendersKindsAndExtras) {
  SKIP_IF_METRICS_COMPILED_OUT();
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::GetCounter("test.json_counter").Reset();
  obs::GetCounter("test.json_counter").Add(3);
  obs::GetGauge("test.json_gauge").Set(-4);
  obs::Histogram& hist = obs::GetHistogram("test.json_hist");
  hist.Reset();
  hist.Record(10);
  hist.Record(20);

  const std::string json =
      obs::SnapshotJson(obs::Snapshot(), {{"test.derived_rate", 0.5}});
  EXPECT_NE(json.find("\"test.json_counter\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json_gauge\": -4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json_hist\": {\"count\": 2"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test.derived_rate\": 0.5"), std::string::npos)
      << json;
  // Structurally balanced (cheap well-formedness check without a parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsMetricsTest, HistogramPercentileEdgeCases) {
  // Pure function of a snapshot; exercises the degenerate shapes the serve
  // path can produce (an idle tenant, a single-bucket latency profile).
  obs::MetricSnapshot empty;
  empty.kind = obs::MetricKind::kHistogram;
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(empty, 0.5), 0.0);

  obs::MetricSnapshot counter;
  counter.kind = obs::MetricKind::kCounter;
  counter.count = 10;
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(counter, 0.99), 0.0);

  // Ten samples all in bucket 2, i.e. the range [2, 4): q=0 pins the bucket
  // floor, q=1 the rank-9-of-10 interpolation point, and out-of-range q
  // clamps to those endpoints.
  obs::MetricSnapshot single;
  single.kind = obs::MetricKind::kHistogram;
  single.count = 10;
  single.buckets.assign(obs::Histogram::kBuckets, 0);
  single.buckets[2] = 10;
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(single, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(single, 1.0), 2.0 + 2.0 * 0.9);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(single, -1.0),
                   obs::HistogramPercentile(single, 0.0));
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(single, 2.0),
                   obs::HistogramPercentile(single, 1.0));

  // Bucket 0 holds exact zeros: every percentile is exactly 0.
  obs::MetricSnapshot zeros;
  zeros.kind = obs::MetricKind::kHistogram;
  zeros.count = 5;
  zeros.buckets.assign(obs::Histogram::kBuckets, 0);
  zeros.buckets[0] = 5;
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(zeros, 1.0), 0.0);
}

TEST(ObsExpositionTest, PrometheusTextRendersAllKinds) {
  SKIP_IF_METRICS_COMPILED_OUT();
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::GetCounter("exp.test.counter").Reset();
  obs::GetCounter("exp.test.counter").Add(3);
  obs::GetGauge("exp.test.gauge").Set(-2);
  obs::Histogram& hist = obs::GetHistogram("exp.test.hist");
  hist.Reset();
  hist.Record(0);
  hist.Record(1);
  hist.Record(1000);

  const std::string text = obs::PrometheusText();
  // Names sanitize to [a-zA-Z0-9_]; HELP carries the dotted original, so a
  // scrape is greppable by the OBSERVABILITY.md catalog key.
  EXPECT_NE(text.find("# HELP exp_test_counter exp.test.counter\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE exp_test_counter counter\n"), std::string::npos);
  EXPECT_NE(text.find("exp_test_counter 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE exp_test_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("exp_test_gauge -2\n"), std::string::npos);
  // Histogram buckets are cumulative over the log2 upper bounds (0 -> le
  // "0", 1 -> le "1", 1000 -> le "1023"), closed by +Inf/_sum/_count.
  EXPECT_NE(text.find("# TYPE exp_test_hist histogram\n"), std::string::npos);
  EXPECT_NE(text.find("exp_test_hist_bucket{le=\"0\"} 1\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("exp_test_hist_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("exp_test_hist_bucket{le=\"1023\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("exp_test_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("exp_test_hist_sum 1001\n"), std::string::npos);
  EXPECT_NE(text.find("exp_test_hist_count 3\n"), std::string::npos);
  // Trailing empty buckets are elided: nothing between 1023 and +Inf.
  EXPECT_EQ(text.find("exp_test_hist_bucket{le=\"2047\"}"), std::string::npos);
}

TEST(ObsExpositionTest, PrometheusTextEmptyWhenDisabled) {
  ObsStateGuard guard;
  obs::SetEnabled(false);
  EXPECT_TRUE(obs::PrometheusText().empty());
}

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ROTOM_OBS_TEST_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define ROTOM_OBS_TEST_TSAN 1
#endif

TEST(ObsExpositionTest, Sigusr1DumpsSnapshotToConfiguredPath) {
  SKIP_IF_METRICS_COMPILED_OUT();
#ifdef ROTOM_OBS_TEST_TSAN
  // The dump handler allocates — a documented trade-off (exposition.h:
  // operator-initiated signal, lost dump beats no mechanism) that TSan
  // rightly reports as signal-unsafe. Covered by the non-TSan suites.
  GTEST_SKIP() << "SIGUSR1 dump allocates in the handler; skipped under TSan";
#endif
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::GetCounter("exp.test.signal_counter").Reset();
  obs::GetCounter("exp.test.signal_counter").Add(7);

  const std::string path = testing::TempDir() + "/rotom_obs_test_usr1.prom";
  std::remove(path.c_str());
  obs::InstallSnapshotSignalHandler(path);
  ASSERT_EQ(std::raise(SIGUSR1), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "SIGUSR1 wrote no dump at " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("exp_test_signal_counter 7\n"),
            std::string::npos)
      << buffer.str();
  std::remove(path.c_str());
}

TEST(ObsTraceTest, NestedSpansProduceWellFormedChromeTrace) {
  SKIP_IF_METRICS_COMPILED_OUT();
  ObsStateGuard guard;
  obs::SetEnabled(true);
  obs::ClearTrace();
  const std::string path = testing::TempDir() + "/rotom_obs_test_trace.json";
  obs::SetTracePath(path);
  ASSERT_TRUE(obs::TraceEnabled());

  {
    ROTOM_TRACE_SPAN("test_outer");
    for (int i = 0; i < 3; ++i) {
      ROTOM_TRACE_SPAN("test_inner");
    }
  }
  // Spans recorded on pool threads land in those threads' ring buffers and
  // appear in the same dump.
  ThreadGuard threads(4);
  ComputePool().ParallelFor(8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      ROTOM_TRACE_SPAN("test_pooled");
    }
  });

  ASSERT_TRUE(obs::DumpTrace(path));
  const std::string json = ReadFileToString(path);
  ASSERT_FALSE(json.empty());

  // Chrome trace_event envelope with complete ("ph": "X") events.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test_pooled\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  // One inner event per loop iteration, at least (other tests may add more).
  size_t inner = 0;
  for (size_t pos = json.find("\"test_inner\""); pos != std::string::npos;
       pos = json.find("\"test_inner\"", pos + 1))
    ++inner;
  EXPECT_GE(inner, 3u);

  // Span durations feed the histogram sink under the span.<name>.us name.
  bool found_hist = false;
  for (const auto& m : obs::Snapshot().metrics) {
    if (m.name == "span.test_outer.us") {
      found_hist = true;
      EXPECT_GE(m.count, 1u);
    }
  }
  EXPECT_TRUE(found_hist);

  obs::SetTracePath("");
  EXPECT_FALSE(obs::TraceEnabled());
  std::remove(path.c_str());
}

TEST(ObsTraceTest, ClearTraceDropsBufferedEvents) {
  SKIP_IF_METRICS_COMPILED_OUT();
  ObsStateGuard guard;
  obs::SetEnabled(true);
  const std::string path = testing::TempDir() + "/rotom_obs_test_clear.json";
  obs::SetTracePath(path);
  {
    ROTOM_TRACE_SPAN("test_cleared");
  }
  obs::ClearTrace();
  ASSERT_TRUE(obs::DumpTrace(path));
  const std::string json = ReadFileToString(path);
  EXPECT_EQ(json.find("\"test_cleared\""), std::string::npos) << json;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rotom
