#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "tensor/ops.h"
#include "tensor/variable.h"
#include "util/thread_pool.h"

namespace rotom {
namespace {

using testing_support::ExpectGradientsClose;

Variable Leaf(std::vector<int64_t> shape, uint64_t seed) {
  Rng rng(seed);
  return Variable(Tensor::Randn(std::move(shape), rng, 0.5f),
                  /*requires_grad=*/true);
}

TEST(AutogradBasicsTest, LeafProperties) {
  Variable v(Tensor::Ones({2}), true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  EXPECT_EQ(v.size(), 2);
}

TEST(AutogradBasicsTest, BackwardRequiresScalar) {
  Variable v(Tensor::Ones({2}), true);
  EXPECT_DEATH(v.Backward(), "scalar");
}

TEST(AutogradBasicsTest, SimpleChainGradient) {
  Variable x(Tensor::Scalar(3.0f), true);
  Variable y = ops::Scale(x, 2.0f);      // y = 2x
  Variable z = ops::Mul(y, y);           // z = 4x^2
  Variable loss = ops::Sum(z);
  loss.Backward();
  EXPECT_NEAR(x.grad()[0], 8.0f * 3.0f, 1e-4f);  // dz/dx = 8x
}

TEST(AutogradBasicsTest, GradAccumulatesAcrossUses) {
  Variable x(Tensor::Scalar(2.0f), true);
  Variable y = ops::Add(x, x);  // y = 2x
  Variable loss = ops::Sum(y);
  loss.Backward();
  EXPECT_NEAR(x.grad()[0], 2.0f, 1e-5f);
}

TEST(AutogradBasicsTest, DetachStopsGradient) {
  Variable x(Tensor::Scalar(2.0f), true);
  Variable d = x.Detach();
  EXPECT_FALSE(d.requires_grad());
  Variable y = ops::Mul(ops::Scale(x, 1.0f), d);
  Variable loss = ops::Sum(y);
  loss.Backward();
  // y = x * const(2) -> dy/dx = 2, and no grad accumulates via d.
  EXPECT_NEAR(x.grad()[0], 2.0f, 1e-5f);
}

TEST(AutogradBasicsTest, ZeroGradClears) {
  Variable x(Tensor::Scalar(1.0f), true);
  Variable loss = ops::Sum(ops::Scale(x, 3.0f));
  loss.Backward();
  EXPECT_NEAR(x.grad()[0], 3.0f, 1e-6f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0f);
}

TEST(AutogradBasicsTest, NoGradThroughConstantParents) {
  Variable x(Tensor::Scalar(1.0f), false);
  Variable y = ops::Scale(x, 2.0f);
  EXPECT_FALSE(y.requires_grad());
}

TEST(GradCheckTest, AddSameShape) {
  Variable a = Leaf({2, 3}, 1);
  Variable b = Leaf({2, 3}, 2);
  ExpectGradientsClose({a, b}, [&] { return ops::Sum(ops::Mul(ops::Add(a, b), ops::Add(a, b))); });
}

TEST(GradCheckTest, AddBroadcastBias) {
  Variable a = Leaf({2, 2, 3}, 3);
  Variable bias = Leaf({3}, 4);
  ExpectGradientsClose({a, bias}, [&] {
    Variable y = ops::Add(a, bias);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, Sub) {
  Variable a = Leaf({4}, 5);
  Variable b = Leaf({4}, 6);
  ExpectGradientsClose({a, b}, [&] {
    Variable y = ops::Sub(a, b);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, MulAndScaleAndAddScalar) {
  Variable a = Leaf({3, 2}, 7);
  Variable b = Leaf({3, 2}, 8);
  ExpectGradientsClose({a, b}, [&] {
    Variable y = ops::AddScalar(ops::Scale(ops::Mul(a, b), 1.5f), 0.3f);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, MatMul2D) {
  Variable a = Leaf({3, 4}, 9);
  Variable b = Leaf({4, 2}, 10);
  ExpectGradientsClose({a, b}, [&] {
    Variable y = ops::MatMul(a, b);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, MatMulBatched3D) {
  Variable a = Leaf({2, 3, 4}, 11);
  Variable b = Leaf({2, 4, 2}, 12);
  ExpectGradientsClose({a, b}, [&] {
    Variable y = ops::MatMul(a, b);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, MatMulSharedRight) {
  Variable a = Leaf({2, 3, 4}, 13);
  Variable b = Leaf({4, 2}, 14);
  ExpectGradientsClose({a, b}, [&] {
    Variable y = ops::MatMul(a, b);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, MatMul4DBatched) {
  Variable a = Leaf({2, 2, 3, 2}, 15);
  Variable b = Leaf({2, 2, 2, 3}, 16);
  ExpectGradientsClose({a, b}, [&] {
    Variable y = ops::MatMul(a, b);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, MatMulSharedRight4D) {
  Variable a = Leaf({2, 2, 3, 4}, 35);
  Variable b = Leaf({4, 2}, 36);
  ExpectGradientsClose({a, b}, [&] {
    Variable y = ops::MatMul(a, b);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, MatMulBT2D) {
  Variable a = Leaf({3, 4}, 37);
  Variable b = Leaf({2, 4}, 38);
  ExpectGradientsClose({a, b}, [&] {
    Variable y = ops::MatMulBT(a, b);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, MatMulBTBatched4D) {
  Variable a = Leaf({2, 2, 3, 4}, 39);
  Variable b = Leaf({2, 2, 5, 4}, 40);
  ExpectGradientsClose({a, b}, [&] {
    Variable y = ops::MatMulBT(a, b);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, MatMulBTSharedRight) {
  Variable a = Leaf({2, 3, 4}, 41);
  Variable b = Leaf({5, 4}, 42);
  ExpectGradientsClose({a, b}, [&] {
    Variable y = ops::MatMulBT(a, b);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, MatMulBTMatchesExplicitTranspose) {
  Variable a = Leaf({2, 3, 4}, 43);
  Variable b = Leaf({2, 5, 4}, 44);
  Variable direct = ops::MatMulBT(a, b);
  Variable via_transpose = ops::MatMul(a, ops::Transpose(b, 1, 2));
  EXPECT_TRUE(direct.value().AllClose(via_transpose.value(), 1e-5f));
}

TEST(GradCheckTest, TransposeLastTwo) {
  Variable a = Leaf({2, 3, 4}, 17);
  ExpectGradientsClose({a}, [&] {
    Variable y = ops::Transpose(a, 1, 2);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, Reshape) {
  Variable a = Leaf({2, 6}, 18);
  ExpectGradientsClose({a}, [&] {
    Variable y = ops::Reshape(a, {3, 4});
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, Softmax) {
  Variable a = Leaf({3, 4}, 19);
  Rng rng(20);
  Variable coef(Tensor::RandUniform({3, 4}, rng, 0.0f, 1.0f), false);
  ExpectGradientsClose({a}, [&] {
    return ops::Sum(ops::Mul(ops::Softmax(a), coef));
  });
}

TEST(GradCheckTest, LogSoftmax) {
  Variable a = Leaf({2, 5}, 21);
  Rng rng(22);
  Variable coef(Tensor::RandUniform({2, 5}, rng, 0.0f, 1.0f), false);
  ExpectGradientsClose({a}, [&] {
    return ops::Sum(ops::Mul(ops::LogSoftmax(a), coef));
  });
}

TEST(GradCheckTest, MeanOp) {
  Variable a = Leaf({7}, 23);
  ExpectGradientsClose({a}, [&] { return ops::Mean(ops::Mul(a, a)); });
}

TEST(GradCheckTest, DotOp) {
  Variable a = Leaf({5}, 24);
  Variable b = Leaf({5}, 25);
  ExpectGradientsClose({a, b}, [&] { return ops::Dot(a, b); });
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Shift values away from 0 so finite differences are valid.
  Rng rng(26);
  Tensor t = Tensor::Randn({10}, rng, 1.0f);
  for (int64_t i = 0; i < t.size(); ++i)
    if (std::fabs(t[i]) < 0.05f) t[i] = 0.2f;
  Variable a(t, true);
  ExpectGradientsClose({a}, [&] { return ops::Sum(ops::Mul(ops::Relu(a), ops::Relu(a))); });
}

TEST(GradCheckTest, Gelu) {
  Variable a = Leaf({8}, 27);
  ExpectGradientsClose({a}, [&] { return ops::Sum(ops::Gelu(a)); });
}

TEST(GradCheckTest, TanhOp) {
  Variable a = Leaf({6}, 28);
  ExpectGradientsClose({a}, [&] { return ops::Sum(ops::Tanh(a)); });
}

TEST(GradCheckTest, SigmoidOp) {
  Variable a = Leaf({6}, 29);
  ExpectGradientsClose({a}, [&] { return ops::Sum(ops::Sigmoid(a)); });
}

TEST(GradCheckTest, EmbeddingGather) {
  Variable table = Leaf({5, 3}, 30);
  std::vector<int64_t> ids{0, 2, 2, 4};
  ExpectGradientsClose({table}, [&] {
    Variable y = ops::Embedding(table, ids);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, LayerNormOp) {
  Variable x = Leaf({3, 4}, 31);
  Variable gamma(Tensor::Full({4}, 1.2f), true);
  Variable beta(Tensor::Full({4}, 0.1f), true);
  Rng rng(32);
  Variable coef(Tensor::RandUniform({3, 4}, rng, -1.0f, 1.0f), false);
  ExpectGradientsClose({x, gamma, beta}, [&] {
    return ops::Sum(ops::Mul(ops::LayerNorm(x, gamma, beta), coef));
  }, 1e-2f, 4e-2f);
}

TEST(GradCheckTest, ConcatLastDim) {
  Variable a = Leaf({2, 3}, 33);
  Variable b = Leaf({2, 2}, 34);
  ExpectGradientsClose({a, b}, [&] {
    Variable y = ops::ConcatLastDim({a, b});
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, SelectIndexMiddleDim) {
  Variable a = Leaf({2, 3, 4}, 35);
  ExpectGradientsClose({a}, [&] {
    Variable y = ops::SelectIndex(a, 1, 0);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, AddSequenceMask) {
  Variable scores = Leaf({2, 2, 3, 4}, 36);
  Rng rng(37);
  Tensor bias = Tensor::RandUniform({2, 4}, rng, -1.0f, 0.0f);
  ExpectGradientsClose({scores}, [&] {
    Variable y = ops::AddSequenceMask(scores, bias);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, CrossEntropyPerExample) {
  Variable logits = Leaf({4, 3}, 38);
  std::vector<int64_t> labels{0, 1, 2, 1};
  ExpectGradientsClose({logits}, [&] {
    return ops::Sum(ops::CrossEntropyPerExample(logits, labels));
  });
}

TEST(GradCheckTest, CrossEntropyMean) {
  Variable logits = Leaf({3, 4}, 39);
  std::vector<int64_t> labels{3, 0, 2};
  ExpectGradientsClose({logits}, [&] {
    return ops::CrossEntropyMean(logits, labels);
  });
}

TEST(GradCheckTest, SoftCrossEntropy) {
  Variable logits = Leaf({3, 3}, 40);
  Tensor q = Tensor::FromVector(
      {3, 3}, {0.7f, 0.2f, 0.1f, 0.0f, 1.0f, 0.0f, 0.3f, 0.3f, 0.4f});
  ExpectGradientsClose({logits}, [&] {
    return ops::Sum(ops::SoftCrossEntropyPerExample(logits, q));
  });
}

TEST(GradCheckTest, NormalizeMeanOne) {
  Rng rng(41);
  Variable w(Tensor::RandUniform({5}, rng, 0.2f, 1.0f), true);
  Rng rng2(42);
  Variable coef(Tensor::RandUniform({5}, rng2, -1.0f, 1.0f), false);
  ExpectGradientsClose({w}, [&] {
    return ops::Sum(ops::Mul(ops::NormalizeMeanOne(w), coef));
  });
}

TEST(GradCheckTest, WeightedPerExampleLossComposition) {
  // The exact composition used by the meta-trainer: per-example CE dotted
  // with normalized weights.
  Variable logits = Leaf({4, 2}, 43);
  Rng rng(44);
  Variable w(Tensor::RandUniform({4}, rng, 0.3f, 0.9f), true);
  std::vector<int64_t> labels{0, 1, 1, 0};
  ExpectGradientsClose({logits, w}, [&] {
    Variable ce = ops::CrossEntropyPerExample(logits, labels);
    Variable wn = ops::NormalizeMeanOne(w);
    return ops::Scale(ops::Dot(ce, wn), 1.0f / 4.0f);
  });
}

TEST(DropoutTest, IdentityWhenEval) {
  Rng rng(45);
  Variable a = Leaf({100}, 46);
  Variable y = ops::Dropout(a, 0.5f, rng, /*training=*/false);
  EXPECT_TRUE(y.value().Equals(a.value()));
}

TEST(DropoutTest, ZeroProbIsIdentity) {
  Rng rng(47);
  Variable a = Leaf({10}, 48);
  Variable y = ops::Dropout(a, 0.0f, rng, true);
  EXPECT_TRUE(y.value().Equals(a.value()));
}

TEST(DropoutTest, PreservesExpectation) {
  Rng rng(49);
  Variable a(Tensor::Ones({20000}), false);
  Variable y = ops::Dropout(a, 0.3f, rng, true);
  EXPECT_NEAR(y.value().Mean(), 1.0f, 0.02f);
}

TEST(DropoutTest, GradientMatchesMask) {
  Rng rng(50);
  Variable a(Tensor::Ones({1000}), true);
  Variable y = ops::Dropout(a, 0.4f, rng, true);
  ops::Sum(y).Backward();
  // Gradient equals the mask: zero where dropped, 1/keep where kept.
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_FLOAT_EQ(a.grad()[i], y.value()[i]);
  }
}

TEST(AutogradStressTest, DeepChainDoesNotOverflowStack) {
  Variable x(Tensor::Scalar(1.0f), true);
  Variable y = x;
  for (int i = 0; i < 5000; ++i) y = ops::Scale(y, 1.0001f);
  Variable loss = ops::Sum(y);
  loss.Backward();
  EXPECT_GT(x.grad()[0], 1.0f);
}

TEST(AutogradStressTest, DiamondGraphAccumulates) {
  Variable x(Tensor::Scalar(2.0f), true);
  Variable a = ops::Scale(x, 3.0f);
  Variable b = ops::Mul(x, x);
  Variable loss = ops::Sum(ops::Add(a, b));  // 3x + x^2
  loss.Backward();
  EXPECT_NEAR(x.grad()[0], 3.0f + 2.0f * 2.0f, 1e-4f);
}

// The kernel layer promises thread-count-invariant numerics: no FP reduction
// is ever split across threads, so forward AND backward must be bit-identical
// (Tensor::Equals, not AllClose) at any pool size. Runs a small
// attention-flavored graph through every parallel kernel family: GEMM in all
// three transpose roles, softmax, layernorm, gelu, broadcast bias.
TEST(ThreadInvarianceTest, ForwardBackwardBitIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    SetComputeThreads(threads);
    Rng rng(123);
    Variable x(Tensor::Randn({3, 9, 16}, rng, 0.5f), true);
    Variable wq(Tensor::Randn({16, 16}, rng, 0.3f), true);
    Variable wk(Tensor::Randn({16, 16}, rng, 0.3f), true);
    Variable bias(Tensor::Randn({16}, rng, 0.3f), true);
    Variable gamma(Tensor::Ones({16}), true);
    Variable beta(Tensor::Zeros({16}), true);

    Variable q = ops::MatMul(x, wq);                    // shared-RHS GEMM
    Variable k = ops::Add(ops::MatMul(x, wk), bias);    // + broadcast bias
    Variable attn = ops::Softmax(ops::Scale(ops::MatMulBT(q, k), 0.25f));
    Variable ctx = ops::MatMul(attn, ops::Gelu(k));
    Variable y = ops::LayerNorm(ctx, gamma, beta);
    Variable loss = ops::Mean(ops::Mul(y, y));
    loss.Backward();

    std::vector<Tensor> result;
    result.push_back(y.value().Clone());
    for (const Variable* v : {&x, &wq, &wk, &bias, &gamma, &beta})
      result.push_back(v->grad().Clone());
    return result;
  };

  const auto serial = run(1);
  const auto parallel = run(4);
  SetComputeThreads(0);  // restore the env/hardware default for other tests
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i)
    EXPECT_TRUE(serial[i].Equals(parallel[i]))
        << "tensor " << i << " differs between 1 and 4 threads";
}

}  // namespace
}  // namespace rotom
