// Behavioral contracts of the trainers: checkpoint restoration, weight
// dynamics, and the interaction of the meta models with the loss.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/finetune.h"
#include "core/rotom_trainer.h"
#include "core/weighting.h"
#include "nn/optim.h"

namespace rotom {
namespace {

std::shared_ptr<text::Vocabulary> SmallVocab() {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w : {"up", "down", "left", "right", "very", "really"})
    vocab->AddToken(w);
  return vocab;
}

models::ClassifierConfig SmallConfig() {
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 8;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  return config;
}

data::TaskDataset UpDownTask() {
  data::TaskDataset ds;
  ds.name = "updown";
  ds.num_classes = 2;
  for (int i = 0; i < 8; ++i) {
    ds.train.push_back({i % 2 ? "very up really up" : "very down really down",
                        i % 2});
  }
  ds.valid = ds.train;
  ds.test = {{"really up", 1}, {"really down", 0}};
  for (const auto& e : ds.train) ds.unlabeled.push_back(e.text);
  return ds;
}

TEST(FinetuneBehaviorTest, RestoredModelMatchesReportedBestMetric) {
  Rng rng(1);
  auto vocab = SmallVocab();
  models::TransformerClassifier model(SmallConfig(), vocab, rng);
  core::FinetuneOptions options;
  options.epochs = 5;
  options.batch_size = 4;
  options.seed = 2;
  core::FinetuneTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto ds = UpDownTask();
  auto result = trainer.Train(ds);
  // The restored checkpoint must reproduce the best reported valid metric.
  const double now = eval::EvaluateModel(model, ds.valid,
                                         eval::MetricKind::kAccuracy);
  EXPECT_DOUBLE_EQ(now, result.best_valid_metric);
}

TEST(FinetuneBehaviorTest, ModelLeftInEvalMode) {
  Rng rng(3);
  auto vocab = SmallVocab();
  models::TransformerClassifier model(SmallConfig(), vocab, rng);
  core::FinetuneOptions options;
  options.epochs = 1;
  core::FinetuneTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto ds = UpDownTask();
  trainer.Train(ds);
  EXPECT_FALSE(model.training());
}

TEST(RotomBehaviorTest, ModelLeftInEvalModeAndCheckpointed) {
  Rng rng(4);
  auto vocab = SmallVocab();
  models::TransformerClassifier model(SmallConfig(), vocab, rng);
  core::RotomOptions options;
  options.epochs = 3;
  options.batch_size = 4;
  options.seed = 5;
  core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto ds = UpDownTask();
  auto result = trainer.Train(ds, [](const std::string& s, Rng&) {
    return std::vector<std::string>{s};
  });
  EXPECT_FALSE(model.training());
  const double now = eval::EvaluateModel(model, ds.valid,
                                         eval::MetricKind::kAccuracy);
  EXPECT_DOUBLE_EQ(now, result.best_valid_metric);
}

TEST(RotomBehaviorTest, MetaUpdateEveryReducesNothingButCost) {
  // With meta updates every 2nd batch the trainer still runs to completion
  // and produces a usable model.
  Rng rng(6);
  auto vocab = SmallVocab();
  models::TransformerClassifier model(SmallConfig(), vocab, rng);
  core::RotomOptions options;
  options.epochs = 2;
  options.batch_size = 4;
  options.meta_update_every = 2;
  options.seed = 7;
  core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto ds = UpDownTask();
  auto result = trainer.Train(ds, [](const std::string& s, Rng&) {
    return std::vector<std::string>{s};
  });
  EXPECT_EQ(result.epochs_run, 2);
  EXPECT_GE(result.best_valid_metric, 50.0);
}

TEST(RotomBehaviorTest, SslBatchRatioRuns) {
  Rng rng(8);
  auto vocab = SmallVocab();
  models::TransformerClassifier model(SmallConfig(), vocab, rng);
  core::RotomOptions options;
  options.epochs = 3;
  options.batch_size = 4;
  options.use_ssl = true;
  options.ssl_batch_ratio = 0.5;
  options.ssl_warmup_epochs = 1;
  options.seed = 9;
  core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto ds = UpDownTask();
  auto result = trainer.Train(ds, [](const std::string& s, Rng&) {
    return std::vector<std::string>{s};
  });
  EXPECT_EQ(result.epochs_run, 3);
}

TEST(WeightingBehaviorTest, L2TermRaisesWeights) {
  Rng rng(10);
  auto vocab = SmallVocab();
  core::WeightingModel weighting(SmallConfig(), vocab, rng);
  weighting.SetTraining(false);
  Rng fwd(0);
  Tensor zero_l2({2});
  Tensor big_l2 = Tensor::FromVector({2}, {1.0f, 1.0f});
  const std::vector<std::string> texts = {"very up", "very down"};
  Rng f1(0), f2(0);
  Tensor w0 = weighting.Weights(texts, zero_l2, f1).value();
  Tensor w1 = weighting.Weights(texts, big_l2, f2).value();
  // Eq. 2: the L2 term is additive, so weights rise by exactly its value.
  EXPECT_NEAR(w1[0] - w0[0], 1.0f, 1e-5f);
  EXPECT_NEAR(w1[1] - w0[1], 1.0f, 1e-5f);
}

TEST(RotomBehaviorTest, ZeroAugmentsWithFilterOriginalsArbitratesData) {
  // The label-cleaning configuration: stream == train set, filter active on
  // originals. Keep fraction should be meaningfully below 1 once the filter
  // learns (or at least the run must complete and track the fraction).
  Rng rng(11);
  auto vocab = SmallVocab();
  models::TransformerClassifier model(SmallConfig(), vocab, rng);
  core::RotomOptions options;
  options.epochs = 3;
  options.batch_size = 4;
  options.augments_per_example = 0;
  options.filter_originals = true;
  options.seed = 12;
  core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto ds = UpDownTask();
  trainer.Train(ds, [](const std::string&, Rng&) {
    return std::vector<std::string>{};
  });
  EXPECT_GT(trainer.last_keep_fraction(), 0.0);
  EXPECT_LE(trainer.last_keep_fraction(), 1.0);
}

}  // namespace
}  // namespace rotom
