// Property-based sweeps over the core invariants, parameterized with
// TEST_P/INSTANTIATE_TEST_SUITE_P (seeds, operators, shapes, temperatures).

#include <algorithm>
#include <set>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "augment/ops.h"
#include "augment/registry.h"
#include "core/ssl.h"
#include "data/edt_gen.h"
#include "data/em_gen.h"
#include "gradcheck.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"

namespace rotom {
namespace {

using testing_support::ExpectGradientsClose;

// ---------------------------------------------------------------------------
// DA operator invariants over (operator x input-shape x seed), sweeping
// every registered operator — new plugins are covered automatically.
// ---------------------------------------------------------------------------

int NumRegisteredOps() {
  return static_cast<int>(augment::OperatorRegistry::Global().All().size());
}

class DaOpPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(DaOpPropertyTest, StructuralInvariants) {
  const augment::Operator& op = *augment::OperatorRegistry::Global()
                                     .All()[std::get<0>(GetParam())];
  const std::string name = op.name();
  Rng rng(std::get<1>(GetParam()));
  const std::vector<std::string> inputs = {
      "where is the orange bowl ?",
      "[COL] title [VAL] efficient query processing [COL] year [VAL] 1999",
      "[COL] name [VAL] google llc [COL] phone [VAL] 123 [SEP] "
      "[COL] name [VAL] alphabet inc [COL] phone [VAL] 456",
      "a b",
  };
  for (const auto& input : inputs) {
    const auto tokens = text::Tokenize(input);
    for (int trial = 0; trial < 10; ++trial) {
      const auto out = op.Apply(tokens, {}, rng);
      // Never empties the sequence.
      ASSERT_FALSE(out.empty()) << name << " on " << input;
      // [SEP] count is invariant under every operator.
      const auto count = [](const std::vector<std::string>& ts,
                            const char* t) {
        return std::count(ts.begin(), ts.end(), t);
      };
      EXPECT_EQ(count(out, "[SEP]"), count(tokens, "[SEP]")) << name;
      // [COL]/[VAL] only change (in lockstep) under col_del.
      if (name != "col_del") {
        EXPECT_EQ(count(out, "[COL]"), count(tokens, "[COL]")) << name;
        EXPECT_EQ(count(out, "[VAL]"), count(tokens, "[VAL]")) << name;
      } else {
        EXPECT_EQ(count(out, "[COL]"), count(out, "[VAL]"));
        if (count(tokens, "[COL]") > 0) EXPECT_GE(count(out, "[COL]"), 1);
      }
      // Size changes are bounded by the operator's contract. Operators
      // without an entry here must preserve the token count exactly.
      const int64_t delta = static_cast<int64_t>(out.size()) -
                            static_cast<int64_t>(tokens.size());
      int64_t lo = 0, hi = 0;
      if (name == "token_del" || name == "punct_drop") {
        lo = -1;
      } else if (name == "token_insert") {
        hi = 1;
      } else if (name == "span_del") {
        lo = -4;
      } else if (name == "col_del") {
        lo = -static_cast<int64_t>(tokens.size()) + 1;
      }
      EXPECT_GE(delta, lo) << name << " on " << input;
      EXPECT_LE(delta, hi) << name << " on " << input;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAndSeeds, DaOpPropertyTest,
    ::testing::Combine(::testing::Range(0, NumRegisteredOps()),
                       ::testing::Values(1u, 2u, 3u)));

// ---------------------------------------------------------------------------
// Autograd: random composite graphs check out against finite differences.
// ---------------------------------------------------------------------------

class AutogradChainPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradChainPropertyTest, RandomCompositeGraph) {
  Rng rng(GetParam());
  Variable a(Tensor::Randn({3, 4}, rng, 0.4f), true);
  Variable b(Tensor::Randn({4, 3}, rng, 0.4f), true);
  Variable c(Tensor::Randn({3}, rng, 0.4f), true);
  ExpectGradientsClose({a, b, c}, [&] {
    Variable m = ops::MatMul(a, b);                     // [3,3]
    Variable act = GetParam() % 2 == 0 ? ops::Gelu(m) : ops::Tanh(m);
    Variable withc = ops::Add(act, c);                  // bias broadcast
    Variable sm = ops::Softmax(withc);
    return ops::Sum(ops::Mul(sm, withc));
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradChainPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------------
// Softmax/normalization invariants across shapes.
// ---------------------------------------------------------------------------

class SoftmaxShapeTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(SoftmaxShapeTest, RowsAreDistributions) {
  const auto [rows, cols] = GetParam();
  Rng rng(7);
  Tensor logits = Tensor::Randn({rows, cols}, rng, 3.0f);
  Tensor p = ops::SoftmaxRows(logits);
  for (int64_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (int64_t j = 0; j < cols; ++j) {
      const float v = p.at({r, j});
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxShapeTest,
                         ::testing::Combine(::testing::Values(1, 5, 17),
                                            ::testing::Values(2, 6, 24)));

class NormalizeMeanOneTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(NormalizeMeanOneTest, MeanIsOne) {
  Rng rng(GetParam());
  Variable w(Tensor::RandUniform({GetParam()}, rng, 0.1f, 2.0f), false);
  Tensor y = ops::NormalizeMeanOne(w).value();
  EXPECT_NEAR(y.Mean(), 1.0f, 1e-4f);
  for (int64_t i = 0; i < y.size(); ++i) EXPECT_GE(y[i], 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NormalizeMeanOneTest,
                         ::testing::Values(1, 2, 8, 33));

// ---------------------------------------------------------------------------
// Sharpening properties across temperatures/thresholds.
// ---------------------------------------------------------------------------

class SharpenTemperatureTest : public ::testing::TestWithParam<double> {};

TEST_P(SharpenTemperatureTest, PreservesArgmaxAndSharpens) {
  const double temperature = GetParam();
  Tensor probs = Tensor::FromVector({2, 3}, {0.5f, 0.3f, 0.2f,
                                             0.2f, 0.25f, 0.55f});
  Tensor sharp = core::SharpenV1(probs, temperature);
  for (int64_t r = 0; r < 2; ++r) {
    int64_t argmax_in = 0, argmax_out = 0;
    double sum = 0.0;
    for (int64_t j = 0; j < 3; ++j) {
      if (probs.at({r, j}) > probs.at({r, argmax_in})) argmax_in = j;
      if (sharp.at({r, j}) > sharp.at({r, argmax_out})) argmax_out = j;
      sum += sharp.at({r, j});
    }
    EXPECT_EQ(argmax_in, argmax_out);
    EXPECT_NEAR(sum, 1.0, 1e-5);
    if (temperature < 1.0) {
      EXPECT_GE(sharp.at({r, argmax_out}), probs.at({r, argmax_in}) - 1e-6f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Temperatures, SharpenTemperatureTest,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

// ---------------------------------------------------------------------------
// Dataset generator distributional properties.
// ---------------------------------------------------------------------------

class EmGeneratorPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(EmGeneratorPropertyTest, PositivesOverlapMoreThanNegatives) {
  const auto& [name, seed] = GetParam();
  data::EmOptions options;
  options.budget = 200;
  options.test_size = 100;
  options.unlabeled_size = 100;
  options.seed = seed;
  auto ds = data::MakeEmDataset(name, options);

  auto jaccard = [](const std::string& pair_text) {
    const auto tokens = text::Tokenize(pair_text);
    const size_t sep = augment::FindEntitySep(tokens);
    std::set<std::string> left(tokens.begin(), tokens.begin() + sep);
    std::set<std::string> right(tokens.begin() + sep + 1, tokens.end());
    int64_t inter = 0;
    for (const auto& t : left) inter += right.count(t);
    const double uni = static_cast<double>(left.size() + right.size()) - inter;
    return uni > 0 ? inter / uni : 0.0;
  };
  double pos = 0.0, neg = 0.0;
  int64_t npos = 0, nneg = 0;
  for (const auto& e : ds.train) {
    if (e.label == 1) {
      pos += jaccard(e.text);
      ++npos;
    } else {
      neg += jaccard(e.text);
      ++nneg;
    }
  }
  ASSERT_GT(npos, 0);
  ASSERT_GT(nneg, 0);
  EXPECT_GT(pos / npos, neg / nneg) << name;
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndSeeds, EmGeneratorPropertyTest,
    ::testing::Combine(::testing::ValuesIn(data::EmDatasetNames()),
                       ::testing::Values(1u, 2u)));

class EdtGeneratorPropertyTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(EdtGeneratorPropertyTest, TestErrorRateNearProfile) {
  data::EdtOptions options;
  options.budget = 100;
  options.table_rows = 400;
  options.test_rows = 60;  // large held-out sample for a stable estimate
  options.seed = 9;
  auto ds = data::MakeEdtDataset(GetParam(), options);
  const double rate = data::LabelFraction(ds.test, 1);
  EXPECT_GT(rate, 0.08) << GetParam();
  EXPECT_LT(rate, 0.35) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllEdt, EdtGeneratorPropertyTest,
                         ::testing::ValuesIn(data::EdtDatasetNames()));

// ---------------------------------------------------------------------------
// Tokenize/Detokenize stability: detokenized text re-tokenizes identically.
// ---------------------------------------------------------------------------

class TokenizeRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TokenizeRoundTripTest, TokenizeIsIdempotentOnDetokenized) {
  const auto tokens = text::Tokenize(GetParam());
  const auto again = text::Tokenize(text::Detokenize(tokens));
  EXPECT_EQ(tokens, again);
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, TokenizeRoundTripTest,
    ::testing::Values("Where is the Orange Bowl?",
                      "[COL] Name [VAL] Google LLC [SEP] [COL] x [VAL] y",
                      "price $59.99 usd!",
                      "ab-123 cd456 9.5%",
                      "don't stop believing"));

}  // namespace
}  // namespace rotom
