#include <cmath>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/buffer_pool.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace rotom {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.dim(), 2);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FullAndOnes) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
  Tensor o = Tensor::Ones({2, 2});
  EXPECT_EQ(o.Sum(), 4.0f);
}

TEST(TensorTest, FromVectorChecksSize) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_DEATH(Tensor::FromVector({2, 2}, {1, 2, 3}), "CHECK");
}

TEST(TensorTest, NegativeDimIndex) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
  EXPECT_EQ(t.size(1), 3);
}

TEST(TensorTest, AtRowMajorLayout) {
  Tensor t = Tensor::FromVector({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at({0, 2}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  t.at({1, 2}) = 9.0f;
  EXPECT_EQ(t[5], 9.0f);
}

TEST(TensorTest, CopySharesBuffer) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = a;
  b[0] = 7.0f;
  EXPECT_EQ(a[0], 7.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = a.Clone();
  b[0] = 7.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(TensorTest, ReshapeSharesDataAndInfersDim) {
  Tensor a = Tensor::FromVector({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor b = a.Reshape({3, -1});
  EXPECT_EQ(b.shape(), (std::vector<int64_t>{3, 2}));
  b[0] = 42.0f;
  EXPECT_EQ(a[0], 42.0f);
  EXPECT_DEATH(a.Reshape({4, 2}), "CHECK");
}

TEST(TensorTest, ArithmeticHelpers) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_EQ(a[2], 33.0f);
  a.AddScaled(b, -1.0f);
  EXPECT_EQ(a[1], 2.0f);
  a.Scale(2.0f);
  EXPECT_EQ(a[0], 2.0f);
  a.CopyFrom(b);
  EXPECT_TRUE(a.Equals(b));
}

TEST(TensorTest, Reductions) {
  Tensor a = Tensor::FromVector({4}, {1, -2, 3, -4});
  EXPECT_EQ(a.Sum(), -2.0f);
  EXPECT_EQ(a.Mean(), -0.5f);
  EXPECT_EQ(a.AbsMax(), 4.0f);
  EXPECT_NEAR(a.Norm(), std::sqrt(30.0f), 1e-5f);
}

TEST(TensorTest, AllCloseRespectsTolerance) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f});
  Tensor b = Tensor::FromVector({2}, {1.0f + 5e-6f, 2.0f});
  EXPECT_TRUE(a.AllClose(b));
  EXPECT_FALSE(a.AllClose(b, 1e-7f));
  Tensor c = Tensor::FromVector({1}, {1.0f});
  EXPECT_FALSE(a.AllClose(c));
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(3);
  Tensor t = Tensor::Randn({10000}, rng, 2.0f);
  EXPECT_NEAR(t.Mean(), 0.0f, 0.1f);
  double var = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) var += t[i] * t[i];
  EXPECT_NEAR(var / t.size(), 4.0, 0.3);
}

TEST(TensorTest, RandUniformRange) {
  Rng rng(4);
  Tensor t = Tensor::RandUniform({1000}, rng, -0.5f, 0.5f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -0.5f);
    EXPECT_LT(t[i], 0.5f);
  }
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).ShapeString(), "Tensor[2,3]");
}

TEST(TransposeCopyTest, Transpose2D) {
  Tensor a = Tensor::FromVector({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor t = ops::TransposeCopy(a, 0, 1);
  EXPECT_EQ(t.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(t.at({0, 1}), 3.0f);
  EXPECT_EQ(t.at({2, 0}), 2.0f);
}

TEST(TransposeCopyTest, TransposeMiddleDims4D) {
  // [B=2,T=3,H=2,D=2] -> swap dims 1,2 -> [2,2,3,2]
  std::vector<float> vals(24);
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<float>(i);
  Tensor a = Tensor::FromVector({2, 3, 2, 2}, vals);
  Tensor t = ops::TransposeCopy(a, 1, 2);
  EXPECT_EQ(t.shape(), (std::vector<int64_t>{2, 2, 3, 2}));
  for (int64_t b = 0; b < 2; ++b)
    for (int64_t i = 0; i < 3; ++i)
      for (int64_t h = 0; h < 2; ++h)
        for (int64_t d = 0; d < 2; ++d)
          EXPECT_EQ(t.at({b, h, i, d}), a.at({b, i, h, d}));
}

TEST(TransposeCopyTest, DoubleTransposeIsIdentity) {
  Rng rng(5);
  Tensor a = Tensor::Randn({2, 3, 4}, rng);
  Tensor t = ops::TransposeCopy(ops::TransposeCopy(a, 0, 2), 0, 2);
  EXPECT_TRUE(t.AllClose(a));
}

TEST(SoftmaxRowsTest, RowsSumToOne) {
  Tensor logits = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor p = ops::SoftmaxRows(logits);
  for (int64_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 3; ++j) sum += p.at({r, j});
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(p.at({0, 2}), p.at({0, 0}));
}

TEST(SoftmaxRowsTest, StableForLargeLogits) {
  Tensor logits = Tensor::FromVector({1, 2}, {1000.0f, 1000.0f});
  Tensor p = ops::SoftmaxRows(logits);
  EXPECT_NEAR(p[0], 0.5f, 1e-5f);
  EXPECT_NEAR(p[1], 0.5f, 1e-5f);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(7);
  NamedTensors tensors;
  tensors.emplace_back("embed.weight", Tensor::Randn({5, 4}, rng));
  tensors.emplace_back("head.bias", Tensor::Randn({3}, rng));
  const std::string path = ::testing::TempDir() + "/rotom_ckpt_test.bin";
  ASSERT_TRUE(SaveTensors(path, tensors).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].first, "embed.weight");
  EXPECT_TRUE(loaded.value()[0].second.Equals(tensors[0].second));
  EXPECT_EQ(loaded.value()[1].first, "head.bias");
  EXPECT_TRUE(loaded.value()[1].second.Equals(tensors[1].second));
}

TEST(SerializeTest, LoadMissingFileFails) {
  auto loaded = LoadTensors("/nonexistent/rotom.bin");
  EXPECT_FALSE(loaded.ok());
}

TEST(SerializeTest, LoadRejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/rotom_bad_magic.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTROTOM garbage";
  }
  auto loaded = LoadTensors(path);
  EXPECT_FALSE(loaded.ok());
}


TEST(BufferPoolTest, RecyclesTensorBuffers) {
  auto& pool = BufferPool::Instance();
  const auto before = pool.GetStats();
  for (int i = 0; i < 10; ++i) {
    Tensor t({32, 64});
    EXPECT_EQ(t[0], 0.0f);  // recycled buffers come back zero-filled
    t[0] = 1.0f;            // dirty it so reuse without re-zeroing would show
  }
  const auto after = pool.GetStats();
  // Each iteration releases its buffer before the next acquires the same
  // size class, so at most the first construction hits the allocator.
  EXPECT_GE(after.reused - before.reused, 9u);
}

TEST(BufferPoolTest, TrimDropsCachedBytes) {
  auto& pool = BufferPool::Instance();
  { Tensor t({64, 64}); }  // park one buffer
  EXPECT_GT(pool.GetStats().cached_bytes, 0u);
  pool.Trim();
  EXPECT_EQ(pool.GetStats().cached_bytes, 0u);
  // The pool keeps working after a trim.
  Tensor t({64, 64});
  EXPECT_EQ(t.Sum(), 0.0f);
}

}  // namespace
}  // namespace rotom
