// Tests for the training-run flight recorder (obs/runlog.h): file naming
// and schema round-trip, the const-char*/bool overload trap, the env-var
// fallback, the NaN/Inf sentinel, and end-to-end runs of the real trainers
// with run logging on (the trainer-side wiring is what production debugging
// depends on). The crash-handler path is exercised separately by the
// rotom_inspect selftest's truncated-line case and by construction
// (async-signal-safe write(2) only).

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/finetune.h"
#include "core/rotom_trainer.h"
#include "models/classifier.h"
#include "obs/runlog.h"
#include "util/rng.h"

namespace rotom {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(RunLogTest, DisabledWhenUnconfigured) {
  ::unsetenv("ROTOM_RUNLOG_DIR");
  EXPECT_EQ(obs::RunLog::Open({"", "finetune"}), nullptr);
}

TEST(RunLogTest, EnvVarFallbackEnablesLogging) {
  const std::string dir = testing::TempDir() + "/runlog_env";
  ::setenv("ROTOM_RUNLOG_DIR", dir.c_str(), 1);
  auto runlog = obs::RunLog::Open({"", "envtag"});
  ::unsetenv("ROTOM_RUNLOG_DIR");
  ASSERT_NE(runlog, nullptr);
  EXPECT_EQ(runlog->path().rfind(dir + "/envtag-p", 0), 0) << runlog->path();
}

TEST(RunLogTest, SchemaRoundTrip) {
  const std::string dir = testing::TempDir() + "/runlog_schema";
  std::string path;
  {
    auto runlog = obs::RunLog::Open({dir, "unit"});
    ASSERT_NE(runlog, nullptr);
    path = runlog->path();

    obs::RunLogManifest manifest;
    manifest.Set("trainer", "unit")  // const char*: must render as a string
        .Set("seed", int64_t{42})
        .Set("lr", 0.001)
        .Set("use_ssl", true);
    runlog->WriteManifest(manifest);

    obs::RunLogStep step;
    step.step = 1;
    step.epoch = 0;
    step.loss = 0.75;
    step.lr = 0.001;
    step.grad_norm = 2.5;
    step.keep_rate = 0.5;
    step.has_weights = true;
    step.weight_min = 0.25;
    step.weight_mean = 1.0;
    step.weight_max = 1.75;
    step.op_counts["token_del"] = 3;
    runlog->LogStep(step);
    EXPECT_EQ(runlog->steps(), 1);

    runlog->LogEpoch(0, 91.5, 0.625);
  }  // destructor writes the end event

  const auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 4u);

  EXPECT_TRUE(Contains(lines[0], "\"event\": \"manifest\"")) << lines[0];
  EXPECT_TRUE(Contains(lines[0], "\"schema\": \"rotom-runlog-v1\""));
  EXPECT_TRUE(Contains(lines[0], "\"git_sha\": \""));
  EXPECT_TRUE(Contains(lines[0], "\"rotom_num_threads\": \""));
  // The const char* value must land on the string overload, not decay to
  // bool ("trainer": true was a real bug).
  EXPECT_TRUE(Contains(lines[0], "\"trainer\": \"unit\"")) << lines[0];
  EXPECT_TRUE(Contains(lines[0], "\"seed\": 42"));
  EXPECT_TRUE(Contains(lines[0], "\"use_ssl\": true"));

  EXPECT_TRUE(Contains(lines[1], "\"event\": \"step\"")) << lines[1];
  EXPECT_TRUE(Contains(lines[1], "\"loss\": 0.75"));
  EXPECT_TRUE(Contains(lines[1], "\"grad_norm\": 2.5"));
  EXPECT_TRUE(Contains(lines[1], "\"keep_rate\": 0.5"));
  EXPECT_TRUE(Contains(lines[1], "\"weight_mean\": 1"));
  EXPECT_TRUE(Contains(lines[1], "\"op.token_del\": 3"));

  EXPECT_TRUE(Contains(lines[2], "\"event\": \"epoch\"")) << lines[2];
  EXPECT_TRUE(Contains(lines[2], "\"valid_metric\": 91.5"));
  EXPECT_TRUE(Contains(lines[2], "\"keep_fraction\": 0.625"));

  EXPECT_TRUE(Contains(lines[3], "\"event\": \"end\"")) << lines[3];
  EXPECT_TRUE(Contains(lines[3], "\"steps\": 1"));
  EXPECT_TRUE(Contains(lines[3], "\"seconds\": "));
}

TEST(RunLogTest, OptionalStepFieldsAreOmitted) {
  const std::string dir = testing::TempDir() + "/runlog_optional";
  std::string path;
  {
    auto runlog = obs::RunLog::Open({dir, "plain"});
    ASSERT_NE(runlog, nullptr);
    path = runlog->path();
    obs::RunLogStep step;
    step.step = 1;
    step.loss = 0.5;
    step.lr = 0.01;  // grad_norm/keep_rate stay at their -1 sentinels
    runlog->LogStep(step);
  }
  const auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);  // step + end (no manifest written)
  EXPECT_FALSE(Contains(lines[0], "grad_norm")) << lines[0];
  EXPECT_FALSE(Contains(lines[0], "keep_rate")) << lines[0];
  EXPECT_FALSE(Contains(lines[0], "weight_")) << lines[0];
  EXPECT_FALSE(Contains(lines[0], "\"op.")) << lines[0];
}

TEST(RunLogDeathTest, NonFiniteLossAborts) {
  const std::string dir = testing::TempDir() + "/runlog_nan";
  EXPECT_DEATH(
      {
        auto runlog = obs::RunLog::Open({dir, "nan"});
        obs::RunLogStep step;
        step.step = 3;
        step.loss = std::nan("");
        step.lr = 0.01;
        runlog->LogStep(step);
      },
      "non-finite loss");
}

TEST(RunLogDeathTest, NonFiniteGradNormAborts) {
  const std::string dir = testing::TempDir() + "/runlog_inf";
  EXPECT_DEATH(
      {
        auto runlog = obs::RunLog::Open({dir, "inf"});
        obs::RunLogStep step;
        step.step = 4;
        step.loss = 0.5;
        step.lr = 0.01;
        step.grad_norm = HUGE_VAL;
        runlog->LogStep(step);
      },
      "non-finite grad_norm");
}

// ---- Real-trainer integration ----

std::shared_ptr<text::Vocabulary> TinyVocab() {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w : {"good", "bad", "movie", "product", "the", "was"})
    vocab->AddToken(w);
  return vocab;
}

models::ClassifierConfig TinyConfig() {
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 8;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  return config;
}

data::TaskDataset TinyTask() {
  data::TaskDataset ds;
  ds.name = "tiny";
  ds.num_classes = 2;
  for (const char* t : {"the movie was good", "good good movie",
                        "the product was good"})
    ds.train.push_back({t, 1});
  for (const char* t : {"the movie was bad", "bad bad movie",
                        "the product was bad"})
    ds.train.push_back({t, 0});
  ds.valid = ds.train;
  ds.test = ds.train;
  return ds;
}

TEST(RunLogTest, FinetuneTrainerWritesRunLog) {
  const std::string dir = testing::TempDir() + "/runlog_finetune";
  Rng rng(3);
  auto vocab = TinyVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::FinetuneOptions options;
  options.epochs = 1;
  options.batch_size = 3;
  options.aug_mode = core::AugMode::kNone;
  options.pipeline.runlog_dir = dir;
  core::FinetuneTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  const auto result = trainer.Train(TinyTask(), nullptr);

  ASSERT_FALSE(result.runlog_path.empty());
  EXPECT_EQ(result.runlog_path.rfind(dir + "/finetune-p", 0), 0)
      << result.runlog_path;
  const auto lines = ReadLines(result.runlog_path);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_TRUE(Contains(lines[0], "\"trainer\": \"finetune\"")) << lines[0];
  int step_lines = 0;
  for (const auto& line : lines) {
    if (Contains(line, "\"event\": \"step\"")) {
      ++step_lines;
      EXPECT_TRUE(Contains(line, "\"grad_norm\": ")) << line;
    }
  }
  EXPECT_EQ(step_lines, result.steps);
  EXPECT_TRUE(Contains(lines.back(), "\"event\": \"end\"")) << lines.back();
}

TEST(RunLogTest, RotomTrainerLogsPolicyTelemetry) {
  const std::string dir = testing::TempDir() + "/runlog_rotom";
  Rng rng(5);
  auto vocab = TinyVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::RotomOptions options;
  options.epochs = 1;
  options.batch_size = 4;
  options.augments_per_example = 1;
  options.pipeline.runlog_dir = dir;
  core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  const auto result = trainer.Train(
      TinyTask(),
      core::TaggedCandidateGenerator([](const std::string& s, Rng&) {
        return std::vector<core::TaggedCandidate>{{s + " good", "token_insert"}};
      }));

  ASSERT_FALSE(result.runlog_path.empty());
  const auto lines = ReadLines(result.runlog_path);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_TRUE(Contains(lines[0], "\"trainer\": \"rotom\"")) << lines[0];
  EXPECT_TRUE(Contains(lines[0], "\"meta_lr\": "));
  bool saw_keep_rate = false, saw_weights = false, saw_op = false;
  for (const auto& line : lines) {
    if (!Contains(line, "\"event\": \"step\"")) continue;
    saw_keep_rate |= Contains(line, "\"keep_rate\": ");
    saw_weights |= Contains(line, "\"weight_mean\": ");
    saw_op |= Contains(line, "\"op.token_insert\": ") ||
              Contains(line, "\"op.original\": ");
  }
  EXPECT_TRUE(saw_keep_rate);
  EXPECT_TRUE(saw_weights);
  EXPECT_TRUE(saw_op);
}

}  // namespace
}  // namespace rotom
