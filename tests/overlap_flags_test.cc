#include <gtest/gtest.h>

#include "models/pretrain.h"
#include "text/tokenizer.h"

namespace rotom {
namespace {

using text::SpecialTokens;
using text::Vocabulary;

Vocabulary PairVocab() {
  Vocabulary v;
  for (const char* w : {"google", "llc", "alphabet", "inc", "name", "title",
                        "databases", "systems", "a", "b"})
    v.AddToken(w);
  return v;
}

TEST(OverlapFlagsTest, PlainTextHasNoFlags) {
  Vocabulary v = PairVocab();
  auto batch = text::EncodeBatchForClassifier(v, {"google llc name"}, 8);
  auto flags = text::ComputeOverlapFlags(batch.ids, 1, 8);
  for (int64_t f : flags) EXPECT_EQ(f, 0);
}

TEST(OverlapFlagsTest, SharedTokensFlaggedOnBothSides) {
  Vocabulary v = PairVocab();
  auto batch = text::EncodeBatchForClassifier(
      v, {"name google llc [SEP] name alphabet inc"}, 12);
  auto flags = text::ComputeOverlapFlags(batch.ids, 1, 12);
  // "name" occurs on both sides -> flagged at both positions.
  // Layout: [CLS] name google llc [SEP] name alphabet inc [SEP] pad...
  EXPECT_EQ(flags[1], 1);  // left "name"
  EXPECT_EQ(flags[2], 0);  // "google" only left
  EXPECT_EQ(flags[5], 1);  // right "name"
  EXPECT_EQ(flags[6], 0);  // "alphabet" only right
}

TEST(OverlapFlagsTest, SpecialTokensNeverFlagged) {
  Vocabulary v = PairVocab();
  auto batch = text::EncodeBatchForClassifier(
      v, {"[COL] name [VAL] google [SEP] [COL] name [VAL] google"}, 16);
  auto flags = text::ComputeOverlapFlags(batch.ids, 1, 16);
  for (size_t i = 0; i < batch.ids.size(); ++i) {
    if (Vocabulary::IsSpecial(batch.ids[i])) EXPECT_EQ(flags[i], 0) << i;
  }
}

TEST(OverlapFlagsTest, IdenticalPairFullyFlagged) {
  Vocabulary v = PairVocab();
  auto batch =
      text::EncodeBatchForClassifier(v, {"google llc [SEP] google llc"}, 10);
  auto flags = text::ComputeOverlapFlags(batch.ids, 1, 10);
  int64_t flagged = 0;
  for (int64_t f : flags) flagged += f;
  EXPECT_EQ(flagged, 4);  // google, llc on each side
}

TEST(OverlapFlagsTest, BatchRowsIndependent) {
  Vocabulary v = PairVocab();
  auto batch = text::EncodeBatchForClassifier(
      v, {"a [SEP] a", "a [SEP] b"}, 6);
  auto flags = text::ComputeOverlapFlags(batch.ids, 2, 6);
  // Row 0: both "a" flagged; row 1: nothing shared.
  EXPECT_EQ(flags[1], 1);
  EXPECT_EQ(flags[3], 1);
  EXPECT_EQ(flags[6 + 1], 0);
  EXPECT_EQ(flags[6 + 3], 0);
}

TEST(SameOriginPretrainTest, LearnsToSeparateViewsFromNearMisses) {
  Rng rng(1);
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w :
       {"sony", "camera", "zoom", "ab123", "canon", "router", "cd456",
        "title", "brand", "price", "29", "49", "silver", "black"})
    vocab->AddToken(w);
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 24;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  models::TransformerClassifier model(config, vocab, rng);

  std::vector<std::string> records = {
      "[COL] title [VAL] sony camera zoom ab123 [COL] price [VAL] 29",
      "[COL] title [VAL] canon router cd456 [COL] price [VAL] 49",
      "[COL] title [VAL] sony router zoom cd456 [COL] price [VAL] 29",
      "[COL] title [VAL] canon camera black ab123 [COL] price [VAL] 49",
      "[COL] title [VAL] sony camera silver ab123 [COL] price [VAL] 49",
      "[COL] title [VAL] canon router silver cd456 [COL] price [VAL] 29",
  };
  models::SameOriginOptions options;
  options.steps = 150;
  const float loss = models::PretrainSameOrigin(model, records, rng, options);
  EXPECT_LT(loss, 0.69f);  // better than coin-flip cross entropy
}

TEST(SameOriginPretrainTest, TinyCorpusIsNoop) {
  Rng rng(2);
  auto vocab = std::make_shared<text::Vocabulary>();
  vocab->AddToken("x");
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 8;
  config.dim = 16;
  config.num_layers = 1;
  config.ffn_dim = 32;
  models::TransformerClassifier model(config, vocab, rng);
  EXPECT_EQ(models::PretrainSameOrigin(model, {"a", "b"}, rng, {}), 0.0f);
}

}  // namespace
}  // namespace rotom
