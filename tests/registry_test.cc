// Tests for the multi-tenant registry tier (DESIGN.md §13): mmap snapshot
// loading (Snapshot::LoadMapped) parity with the stream path and its error
// model, ModelRegistry publish/swap/retire semantics and RCU drain of
// retired sessions, TenantServer admission control and round-robin
// fairness, and the concurrent hot-swap-under-load shape that
// scripts/check.sh runs under TSan: client threads racing repeated swaps
// with every response checked for correctness.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rotom/api.h"

namespace rotom {
namespace {

using serve::InferenceSession;
using serve::ModelRegistry;
using serve::Prediction;
using serve::QuantizeSnapshot;
using serve::Snapshot;
using serve::TenantServer;

std::shared_ptr<text::Vocabulary> RegistryVocab() {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w :
       {"the", "movie", "was", "great", "terrible", "plot", "acting",
        "boring", "brilliant", "a", "an", "of"})
    vocab->AddToken(w);
  return vocab;
}

models::ClassifierConfig RegistryConfig() {
  models::ClassifierConfig config;
  config.num_classes = 3;
  config.max_len = 12;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  return config;
}

Snapshot MakeSnapshot(uint64_t seed = 1) {
  Rng rng(seed);
  models::TransformerClassifier model(RegistryConfig(), RegistryVocab(), rng);
  model.SetTraining(false);
  return Snapshot::FromModel(model);
}

const std::vector<std::string>& QueryTexts() {
  static const std::vector<std::string> texts = {
      "the movie was great", "the plot was boring", "brilliant acting",
      "a terrible movie of boring acting"};
  return texts;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Labels the active session of `name` assigns to QueryTexts(), computed
/// directly on the pinned session.
std::vector<int64_t> LabelsOf(const InferenceSession& session) {
  std::vector<int64_t> labels;
  for (const Prediction& p : session.PredictBatch(QueryTexts()))
    labels.push_back(p.label);
  return labels;
}

// ---------------------------------------------------------------------------
// Snapshot::LoadMapped

TEST(LoadMappedTest, MatchesStreamLoadBitIdentical) {
  const Snapshot original = MakeSnapshot();
  const std::string path = TempPath("registry_mmap.rsnap");
  ASSERT_TRUE(original.Save(path).ok());

  auto streamed = Snapshot::Load(path);
  auto mapped = Snapshot::LoadMapped(path);
  ASSERT_TRUE(streamed.ok()) << streamed.status().message();
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();

  auto a = InferenceSession::Create(streamed.value());
  auto b = InferenceSession::Create(mapped.value());
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok()) << b.status().message();
  const Tensor la = a.value()->Logits(QueryTexts());
  const Tensor lb = b.value()->Logits(QueryTexts());
  ASSERT_EQ(la.shape(), lb.shape());
  for (int64_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]) << i;
  std::remove(path.c_str());
}

TEST(LoadMappedTest, MatchesStreamLoadForQuantizedSnapshots) {
  auto quantized = QuantizeSnapshot(MakeSnapshot());
  ASSERT_TRUE(quantized.ok()) << quantized.status().message();
  const std::string path = TempPath("registry_mmap_q.rsnap");
  ASSERT_TRUE(quantized.value().Save(path).ok());

  auto streamed = Snapshot::Load(path);
  auto mapped = Snapshot::LoadMapped(path);
  ASSERT_TRUE(streamed.ok()) << streamed.status().message();
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  ASSERT_EQ(mapped.value().qweights.size(), streamed.value().qweights.size());

  auto a = InferenceSession::Create(streamed.value());
  auto b = InferenceSession::Create(mapped.value());
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok()) << b.status().message();
  EXPECT_TRUE(b.value()->quantized());
  const Tensor la = a.value()->Logits(QueryTexts());
  const Tensor lb = b.value()->Logits(QueryTexts());
  for (int64_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]) << i;
  std::remove(path.c_str());
}

TEST(LoadMappedTest, RejectsMalformedFiles) {
  EXPECT_FALSE(Snapshot::LoadMapped("/nonexistent/model.rsnap").ok());

  const std::string path = TempPath("registry_mmap_bad.rsnap");
  ASSERT_TRUE(MakeSnapshot().Save(path).ok());
  const std::string good = ReadFileBytes(path);

  // Truncated payload.
  WriteFileBytes(path, good.substr(0, good.size() - 5));
  EXPECT_FALSE(Snapshot::LoadMapped(path).ok());

  // Trailing garbage after the payload.
  WriteFileBytes(path, good + "junk");
  EXPECT_FALSE(Snapshot::LoadMapped(path).ok());

  // One flipped payload byte: checksum mismatch.
  std::string corrupt = good;
  corrupt[corrupt.size() - 1] ^= 0x01;
  WriteFileBytes(path, corrupt);
  auto status = Snapshot::LoadMapped(path);
  EXPECT_FALSE(status.ok());

  // Shorter than the header.
  WriteFileBytes(path, good.substr(0, 10));
  EXPECT_FALSE(Snapshot::LoadMapped(path).ok());

  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ModelRegistry semantics

TEST(ModelRegistryTest, PublishSwapRetireLifecycle) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.Has("m"));
  EXPECT_EQ(registry.Acquire("m"), nullptr);
  EXPECT_FALSE(registry.Swap("m", 1).ok());
  EXPECT_FALSE(registry.Retire("m", 1).ok());

  auto v1 = registry.Publish("m", MakeSnapshot(1));
  ASSERT_TRUE(v1.ok()) << v1.status().message();
  EXPECT_EQ(v1.value(), 1u);
  EXPECT_TRUE(registry.Has("m"));

  // First version activates immediately.
  auto active = registry.Acquire("m");
  ASSERT_NE(active, nullptr);
  const std::vector<int64_t> labels_v1 = LabelsOf(*active);

  // A second version stages without disturbing the active one.
  auto v2 = registry.Publish("m", MakeSnapshot(2));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value(), 2u);
  EXPECT_EQ(registry.Acquire("m"), active);
  EXPECT_NE(registry.AcquireVersion("m", 2), nullptr);
  EXPECT_EQ(registry.AcquireVersion("m", 3), nullptr);

  // Swap redirects Acquire; swapping to the active version is a no-op.
  EXPECT_FALSE(registry.Swap("m", 99).ok());
  ASSERT_TRUE(registry.Swap("m", 2).ok());
  EXPECT_NE(registry.Acquire("m"), active);
  ASSERT_TRUE(registry.Swap("m", 2).ok());

  // The active version cannot be retired; a staged one can.
  EXPECT_FALSE(registry.Retire("m", 2).ok());
  ASSERT_TRUE(registry.Retire("m", 1).ok());
  EXPECT_EQ(registry.AcquireVersion("m", 1), nullptr);
  EXPECT_FALSE(registry.Retire("m", 1).ok());

  // Version ids keep counting; retired ids are never reused.
  auto v3 = registry.Publish("m", MakeSnapshot(3));
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3.value(), 3u);

  // The old session still answers for holders of the old pin.
  EXPECT_EQ(LabelsOf(*active), labels_v1);
}

TEST(ModelRegistryTest, PublishFromFileUsesMmapAndListsQuantized) {
  const std::string path = TempPath("registry_pub.rsnap");
  ASSERT_TRUE(MakeSnapshot(1).Save(path).ok());
  auto quantized = QuantizeSnapshot(MakeSnapshot(1));
  ASSERT_TRUE(quantized.ok());

  ModelRegistry registry;
  auto v1 = registry.Publish("m", path);
  ASSERT_TRUE(v1.ok()) << v1.status().message();
  auto v2 = registry.Publish("m", quantized.value());
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(registry.Publish("m", "/nonexistent.rsnap").ok());

  const auto models = registry.List();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].name, "m");
  EXPECT_EQ(models[0].active_version, 1u);
  ASSERT_EQ(models[0].versions.size(), 2u);
  EXPECT_TRUE(models[0].versions[0].active);
  EXPECT_FALSE(models[0].versions[0].quantized);
  EXPECT_FALSE(models[0].versions[1].active);
  EXPECT_TRUE(models[0].versions[1].quantized);
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, RetiredSessionDrainsWhenLastPinDrops) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("m", MakeSnapshot(1)).ok());
  ASSERT_TRUE(registry.Publish("m", MakeSnapshot(2)).ok());

  std::shared_ptr<const InferenceSession> pin = registry.Acquire("m");
  ASSERT_NE(pin, nullptr);
  std::weak_ptr<const InferenceSession> watch = pin;

  ASSERT_TRUE(registry.Swap("m", 2).ok());
  ASSERT_TRUE(registry.Retire("m", 1).ok());

  // The store's reference is gone but the in-flight pin keeps the session
  // alive and answering.
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(LabelsOf(*pin).size(), QueryTexts().size());

  // Dropping the last pin completes the RCU drain.
  pin.reset();
  EXPECT_TRUE(watch.expired());
}

// ---------------------------------------------------------------------------
// TenantServer

TEST(TenantServerTest, RejectsUnknownTenantAndShedsOverload) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("t0", MakeSnapshot(1)).ok());

  TenantServer::Options options;
  options.max_batch = 64;
  // Neither close condition can trigger before Shutdown(): the batch never
  // fills and the deadline is far away, so admission is fully deterministic.
  options.max_delay_us = 10'000'000;
  options.queue_capacity = 4;
  TenantServer server(&registry, {"t0"}, options);

  auto unknown = server.Submit("nope", QueryTexts()[0]).get();
  EXPECT_FALSE(unknown.ok());

  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(server.Submit("t0", QueryTexts()[i % 4]));

  // Exactly queue_capacity requests were admitted; the rest were shed
  // immediately rather than blocking the submitter.
  TenantServer::Stats stats = server.GetStats("t0");
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.rejected, 4u);
  EXPECT_EQ(server.GetStats("nope").requests, 0u);

  // Shutdown drains the admitted four through the model.
  server.Shutdown();
  int ok = 0, shed = 0;
  for (auto& f : futures) {
    auto result = f.get();
    result.ok() ? ++ok : ++shed;
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(shed, 4);
  EXPECT_FALSE(server.Submit("t0", QueryTexts()[0]).get().ok());
}

TEST(TenantServerTest, RoundRobinKeepsLightTenantAheadOfBacklog) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("hog", MakeSnapshot(1)).ok());
  ASSERT_TRUE(registry.Publish("light", MakeSnapshot(2)).ok());

  constexpr int kBacklog = 32;
  TenantServer::Options options;
  options.max_batch = 1;  // one request per batch: 32 turns for the hog
  options.max_delay_us = 50'000;
  options.queue_capacity = kBacklog;

  // With max_batch=1 the worker starts draining "hog" as soon as the first
  // submit lands, so on a loaded machine the submitter can be descheduled
  // mid-pre-fill and the backlog half-drains before "light" enqueues. One
  // clean attempt proves fairness (round-robin serves "light" after at
  // most one "hog" batch per sweep); an unfair scheduler — anything that
  // drains the whole backlog first — fails every attempt.
  constexpr int kAttempts = 5;
  bool light_stayed_ahead = false;
  for (int attempt = 0; attempt < kAttempts && !light_stayed_ahead;
       ++attempt) {
    TenantServer server(&registry, {"hog", "light"}, options);
    std::vector<std::future<StatusOr<Prediction>>> hog_futures;
    for (int i = 0; i < kBacklog; ++i)
      hog_futures.push_back(server.Submit("hog", QueryTexts()[i % 4]));
    auto light_future = server.Submit("light", QueryTexts()[0]);

    auto light = light_future.get();
    const uint64_t hog_batches_at_light_done = server.GetStats("hog").batches;
    EXPECT_TRUE(light.ok()) << light.status().message();
    light_stayed_ahead =
        hog_batches_at_light_done < static_cast<uint64_t>(kBacklog) / 2;

    // The totals are exact regardless of scheduling noise.
    server.Shutdown();
    for (auto& f : hog_futures) EXPECT_TRUE(f.get().ok());
    EXPECT_EQ(server.GetStats("hog").batches, static_cast<uint64_t>(kBacklog));
    EXPECT_EQ(server.GetStats("light").batches, 1u);
  }
  EXPECT_TRUE(light_stayed_ahead)
      << "light tenant never overtook the hog backlog in " << kAttempts
      << " attempts";
}

// ---------------------------------------------------------------------------
// Concurrent hot-swap under load (the TSan shape)

TEST(ModelRegistryTest, ConcurrentAcquireDuringSwapsServesConsistentModels) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("m", MakeSnapshot(1)).ok());
  ASSERT_TRUE(registry.Publish("m", MakeSnapshot(2)).ok());

  // Ground truth per version, computed on directly pinned sessions.
  auto s1 = registry.AcquireVersion("m", 1);
  auto s2 = registry.AcquireVersion("m", 2);
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  const std::vector<int64_t> labels_v1 = LabelsOf(*s1);
  const std::vector<int64_t> labels_v2 = LabelsOf(*s2);

  constexpr int kClients = 4;
  constexpr int kIterations = 40;
  constexpr int kSwaps = 24;

  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kIterations; ++i) {
        const size_t q = static_cast<size_t>(c + i) % QueryTexts().size();
        // Pin, predict, release: the request must see one coherent model —
        // its answer matches v1 or v2 exactly, never a mix.
        auto session = registry.Acquire("m");
        if (session == nullptr) {
          ++bad;
          continue;
        }
        const std::vector<Prediction> out =
            session->PredictBatch({&QueryTexts()[q], 1});
        if (out.size() != 1 ||
            (out[0].label != labels_v1[q] && out[0].label != labels_v2[q]))
          ++bad;
      }
    });
  }

  std::thread swapper([&] {
    for (int i = 0; i < kSwaps; ++i) {
      ASSERT_TRUE(registry.Swap("m", 1 + static_cast<uint64_t>(i) % 2).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (std::thread& t : clients) t.join();
  swapper.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(TenantServerTest, HotSwapUnderMultiTenantLoadNeverServesTornModels) {
  ModelRegistry registry;
  const std::vector<std::string> tenants = {"em", "edt", "cls"};
  for (const std::string& t : tenants) {
    ASSERT_TRUE(registry.Publish(t, MakeSnapshot(1)).ok());
    ASSERT_TRUE(registry.Publish(t, MakeSnapshot(2)).ok());
  }

  // Per-tenant ground truth for both versions; every served answer must
  // match one of them.
  std::vector<std::vector<int64_t>> labels_v1, labels_v2;
  for (const std::string& t : tenants) {
    labels_v1.push_back(LabelsOf(*registry.AcquireVersion(t, 1)));
    labels_v2.push_back(LabelsOf(*registry.AcquireVersion(t, 2)));
  }

  TenantServer::Options options;
  options.max_batch = 8;
  options.max_delay_us = 500;
  options.queue_capacity = 1024;
  TenantServer server(&registry, tenants, options);

  constexpr int kClients = 3;
  constexpr int kIterations = 50;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kIterations; ++i) {
        const size_t t = static_cast<size_t>(c) % tenants.size();
        const size_t q = static_cast<size_t>(i) % QueryTexts().size();
        auto result = server.Predict(tenants[t], QueryTexts()[q]);
        if (!result.ok() || (result.value().label != labels_v1[t][q] &&
                             result.value().label != labels_v2[t][q]))
          ++bad;
      }
    });
  }

  std::thread swapper([&] {
    for (int i = 0; i < 12; ++i) {
      const std::string& t = tenants[static_cast<size_t>(i) % tenants.size()];
      ASSERT_TRUE(registry.Swap(t, 1 + static_cast<uint64_t>(i / 3) % 2).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  for (std::thread& t : clients) t.join();
  swapper.join();
  server.Shutdown();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace rotom
