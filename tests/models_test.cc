#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "models/classifier.h"
#include "models/pretrain.h"
#include "models/seq2seq.h"
#include "nn/optim.h"

namespace rotom {
namespace {

using models::ClassifierConfig;
using models::Seq2SeqConfig;
using models::TransformerClassifier;

std::shared_ptr<text::Vocabulary> TinyVocab() {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w :
       {"the", "movie", "was", "great", "terrible", "a", "b", "c", "d",
        "quick", "brown", "fox", "jumps", "over", "lazy", "dog"})
    vocab->AddToken(w);
  return vocab;
}

ClassifierConfig TinyClassifierConfig() {
  ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 12;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  return config;
}

TEST(ClassifierTest, LogitShape) {
  Rng rng(1);
  auto vocab = TinyVocab();
  TransformerClassifier model(TinyClassifierConfig(), vocab, rng);
  model.SetTraining(false);
  const text::EncodedBatch batch = text::EncodeBatchForClassifier(
      *vocab, {"the movie was great", "the movie was terrible"},
      TinyClassifierConfig().max_len);
  Variable logits = model.ForwardLogitsEncoded(batch, rng);
  EXPECT_EQ(logits.value().shape(), (std::vector<int64_t>{2, 2}));
}

TEST(ClassifierTest, PredictProbsSumToOne) {
  Rng rng(2);
  auto vocab = TinyVocab();
  TransformerClassifier model(TinyClassifierConfig(), vocab, rng);
  model.SetTraining(false);
  Tensor probs = model.PredictProbs({"the movie was great"}, rng);
  EXPECT_NEAR(probs[0] + probs[1], 1.0f, 1e-5f);
}

TEST(ClassifierTest, PredictReturnsArgmax) {
  Rng rng(3);
  auto vocab = TinyVocab();
  TransformerClassifier model(TinyClassifierConfig(), vocab, rng);
  model.SetTraining(false);
  Tensor probs = model.PredictProbs({"a b c"}, rng);
  auto preds = model.Predict({"a b c"}, rng);
  EXPECT_EQ(preds[0], probs[0] > probs[1] ? 0 : 1);
}

TEST(ClassifierTest, FineTuningLearnsTinyTask) {
  Rng rng(4);
  auto vocab = TinyVocab();
  auto config = TinyClassifierConfig();
  TransformerClassifier model(config, vocab, rng);
  nn::Adam optimizer(model.Parameters(), 2e-3f);

  std::vector<std::string> texts = {
      "the movie was great",     "the movie was terrible",
      "great great movie",       "terrible terrible movie",
      "a great movie",           "a terrible movie"};
  std::vector<int64_t> labels = {1, 0, 1, 0, 1, 0};

  model.SetTraining(true);
  const text::EncodedBatch batch =
      text::EncodeBatchForClassifier(*vocab, texts, config.max_len);
  for (int step = 0; step < 60; ++step) {
    optimizer.ZeroGrad();
    Variable logits = model.ForwardLogitsEncoded(batch, rng);
    ops::CrossEntropyMean(logits, labels).Backward();
    optimizer.Step();
  }
  model.SetTraining(false);
  auto preds = model.Predict(texts, rng);
  int correct = 0;
  for (size_t i = 0; i < texts.size(); ++i) correct += preds[i] == labels[i];
  EXPECT_GE(correct, 5);
}

TEST(ClassifierTest, StateDictRoundTripsThroughCheckpoints) {
  Rng rng(5);
  auto vocab = TinyVocab();
  auto config = TinyClassifierConfig();
  TransformerClassifier a(config, vocab, rng);
  TransformerClassifier b(config, vocab, rng);
  b.LoadStateDict(a.StateDict());
  Rng r1(9), r2(9);
  a.SetTraining(false);
  b.SetTraining(false);
  const text::EncodedBatch batch = text::EncodeBatchForClassifier(
      *vocab, {"the movie was great"}, config.max_len);
  Variable la = a.ForwardLogitsEncoded(batch, r1);
  Variable lb = b.ForwardLogitsEncoded(batch, r2);
  EXPECT_TRUE(la.value().AllClose(lb.value()));
}

TEST(PretrainTest, MlmLossDecreases) {
  Rng rng(6);
  auto vocab = TinyVocab();
  auto config = TinyClassifierConfig();
  TransformerClassifier model(config, vocab, rng);

  std::vector<std::string> corpus;
  for (int i = 0; i < 24; ++i) {
    corpus.push_back("the quick brown fox jumps over the lazy dog");
    corpus.push_back("the movie was great");
  }
  models::PretrainOptions first;
  first.epochs = 1;
  first.max_steps = 2;
  const float early = models::PretrainMaskedLm(model, corpus, rng, first);

  models::PretrainOptions more;
  more.epochs = 8;
  const float late = models::PretrainMaskedLm(model, corpus, rng, more);
  EXPECT_LT(late, early);
}

TEST(PretrainTest, EmptyCorpusIsNoop) {
  Rng rng(7);
  auto vocab = TinyVocab();
  TransformerClassifier model(TinyClassifierConfig(), vocab, rng);
  EXPECT_EQ(models::PretrainMaskedLm(model, {}, rng, {}), 0.0f);
}

TEST(PretrainTest, ChangesEncoderParameters) {
  Rng rng(8);
  auto vocab = TinyVocab();
  TransformerClassifier model(TinyClassifierConfig(), vocab, rng);
  const Tensor before = model.Parameters()[0].value().Clone();
  std::vector<std::string> corpus(16, "the quick brown fox jumps");
  models::PretrainOptions options;
  options.epochs = 1;
  models::PretrainMaskedLm(model, corpus, rng, options);
  EXPECT_FALSE(before.Equals(model.Parameters()[0].value()));
}

Seq2SeqConfig TinySeq2SeqConfig() {
  Seq2SeqConfig config;
  config.max_src_len = 12;
  config.max_tgt_len = 12;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  return config;
}

TEST(Seq2SeqTest, LossIsFiniteAndPositive) {
  Rng rng(9);
  auto vocab = TinyVocab();
  models::Seq2SeqModel model(TinySeq2SeqConfig(), vocab, rng);
  Variable loss =
      model.Loss({{"the movie was", "the movie was great"}}, rng);
  EXPECT_GT(loss.value()[0], 0.0f);
  EXPECT_LT(loss.value()[0], 20.0f);
}

TEST(Seq2SeqTest, GenerationProducesKnownTokens) {
  Rng rng(10);
  auto vocab = TinyVocab();
  models::Seq2SeqModel model(TinySeq2SeqConfig(), vocab, rng);
  model.SetTraining(false);
  models::SamplingOptions sampling;
  sampling.max_len = 6;
  Rng gen_rng(1);
  const std::string out = model.Generate("the movie", sampling, gen_rng);
  for (const auto& token : text::Tokenize(out)) {
    EXPECT_TRUE(vocab->Contains(token)) << token;
  }
}

TEST(Seq2SeqTest, GenerateBatchShape) {
  Rng rng(11);
  auto vocab = TinyVocab();
  models::Seq2SeqModel model(TinySeq2SeqConfig(), vocab, rng);
  model.SetTraining(false);
  models::SamplingOptions sampling;
  sampling.max_len = 4;
  Rng gen_rng(2);
  auto outs = model.GenerateBatch({"a b", "c d", "the fox"}, sampling, gen_rng);
  EXPECT_EQ(outs.size(), 3u);
}

TEST(Seq2SeqTest, LearnsIdentityOnTinyCorpus) {
  // After training on copy pairs, generation should reproduce input tokens
  // far more often than chance.
  Rng rng(12);
  auto vocab = TinyVocab();
  models::Seq2SeqModel model(TinySeq2SeqConfig(), vocab, rng);
  nn::Adam optimizer(model.Parameters(), 3e-3f);
  std::vector<std::pair<std::string, std::string>> pairs = {
      {"a b", "a b"}, {"c d", "c d"}, {"the fox", "the fox"},
      {"lazy dog", "lazy dog"}};
  model.SetTraining(true);
  for (int step = 0; step < 120; ++step) {
    optimizer.ZeroGrad();
    Variable loss = model.Loss(pairs, rng);
    loss.Backward();
    optimizer.Step();
  }
  model.SetTraining(false);
  Variable final_loss = model.Loss(pairs, rng);
  EXPECT_LT(final_loss.value()[0], 0.7f);
}

}  // namespace
}  // namespace rotom
