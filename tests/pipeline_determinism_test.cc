// Trainer-level determinism of the pipelined data path: the encoding cache,
// the background prefetcher, and the compute-pool size are pure performance
// knobs, so every configuration must produce bit-identical loss trajectories
// (core/pipeline.h contract; DESIGN.md §8). These tests train the real
// trainers on a tiny task under each configuration and compare
// TrainResult::loss_history float-for-float. scripts/check.sh additionally
// runs this binary under TSan at several pool sizes.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "augment/ops.h"
#include "augment/registry.h"
#include "augment/synonyms.h"
#include "core/finetune.h"
#include "core/rotom_trainer.h"
#include "models/pretrain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/idf.h"
#include "util/thread_pool.h"

namespace rotom {
namespace {

std::shared_ptr<text::Vocabulary> TaskVocab() {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w :
       {"the", "movie", "was", "great", "terrible", "really", "a", "not",
        "good", "bad", "boring", "fantastic", "product", "awful", "fine"})
    vocab->AddToken(w);
  return vocab;
}

models::ClassifierConfig TinyConfig() {
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 10;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.1f;  // keep dropout on: it must not disturb determinism
  return config;
}

data::TaskDataset TinyTask() {
  data::TaskDataset ds;
  ds.name = "tiny";
  ds.num_classes = 2;
  const char* pos[] = {"the movie was great", "really great movie",
                       "a fantastic movie",   "the product was good",
                       "good good movie",     "really fine product"};
  const char* neg[] = {"the movie was terrible", "really bad movie",
                       "a boring movie",         "the product was awful",
                       "bad bad movie",          "really awful product"};
  for (const char* t : pos) ds.train.push_back({t, 1});
  for (const char* t : neg) ds.train.push_back({t, 0});
  ds.valid = ds.train;
  ds.test = {{"the movie was fantastic", 1}, {"a terrible movie", 0}};
  for (const auto& e : ds.train) ds.unlabeled.push_back(e.text);
  ds.unlabeled.push_back("really great product");
  ds.unlabeled.push_back("a bad boring movie");
  return ds;
}

// Deterministic, thread-safe augmenter: duplicates an rng-chosen token.
std::string DuplicateToken(const std::string& input, Rng& rng) {
  auto tokens = text::Tokenize(input);
  if (tokens.empty()) return input;
  const size_t i = rng.UniformInt(static_cast<int64_t>(tokens.size()));
  tokens.insert(tokens.begin() + i, tokens[i]);
  return text::Detokenize(tokens);
}

struct PipelineConfig {
  const char* label;
  core::PipelineOptions options;
  int threads;
};

// The serial reference (no cache, inline production, 1 pool thread) plus
// every knob flipped individually and all together.
std::vector<PipelineConfig> AllConfigs() {
  core::PipelineOptions off;
  off.cache_rows = 0;
  off.prefetch = false;
  core::PipelineOptions cache_only = off;
  cache_only.cache_rows = 1 << 12;
  core::PipelineOptions prefetch_only = off;
  prefetch_only.prefetch = true;
  core::PipelineOptions full;  // defaults: cache + prefetch
  return {{"serial/1t", off, 1},
          {"cache/1t", cache_only, 1},
          {"prefetch/1t", prefetch_only, 1},
          {"full/1t", full, 1},
          {"full/4t", full, 4}};
}

class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { SetComputeThreads(n); }
  ~ThreadGuard() { SetComputeThreads(0); }
};

core::TrainResult RunFinetune(const PipelineConfig& config,
                              core::AugMode mode) {
  ThreadGuard guard(config.threads);
  Rng rng(7);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::FinetuneOptions options;
  options.epochs = 3;
  options.batch_size = 4;
  options.aug_mode = mode;
  options.seed = 5;
  options.pipeline = config.options;
  core::FinetuneTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  return trainer.Train(TinyTask(), DuplicateToken);
}

core::TrainResult RunRotom(const PipelineConfig& config, bool use_ssl) {
  ThreadGuard guard(config.threads);
  Rng rng(11);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::RotomOptions options;
  options.epochs = 2;
  options.batch_size = 4;
  options.augments_per_example = 2;
  options.use_ssl = use_ssl;
  options.ssl_warmup_epochs = 0;
  options.seed = 5;
  options.pipeline = config.options;
  core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  return trainer.Train(TinyTask(), [](const std::string& s, Rng& r) {
    return std::vector<std::string>{DuplicateToken(s, r),
                                    DuplicateToken(s, r)};
  });
}

void ExpectIdentical(const core::TrainResult& reference,
                     const core::TrainResult& candidate, const char* label) {
  EXPECT_EQ(reference.steps, candidate.steps) << label;
  ASSERT_EQ(reference.loss_history.size(), candidate.loss_history.size())
      << label;
  for (size_t i = 0; i < reference.loss_history.size(); ++i) {
    // Bit-identical, not approximately equal: the data path must not touch
    // numerics at all.
    ASSERT_EQ(reference.loss_history[i], candidate.loss_history[i])
        << label << " diverged at step " << i;
  }
  EXPECT_EQ(reference.best_valid_metric, candidate.best_valid_metric) << label;
}

TEST(PipelineDeterminismTest, FinetuneReplaceModeIsConfigInvariant) {
  const auto configs = AllConfigs();
  const auto reference = RunFinetune(configs[0], core::AugMode::kReplace);
  EXPECT_GT(reference.steps, 0);
  ASSERT_FALSE(reference.loss_history.empty());
  for (size_t c = 1; c < configs.size(); ++c) {
    ExpectIdentical(reference,
                    RunFinetune(configs[c], core::AugMode::kReplace),
                    configs[c].label);
  }
}

TEST(PipelineDeterminismTest, FinetuneMixDaModeIsConfigInvariant) {
  const auto configs = AllConfigs();
  const auto reference = RunFinetune(configs[0], core::AugMode::kMixDa);
  ASSERT_FALSE(reference.loss_history.empty());
  for (size_t c = 1; c < configs.size(); ++c) {
    ExpectIdentical(reference,
                    RunFinetune(configs[c], core::AugMode::kMixDa),
                    configs[c].label);
  }
}

TEST(PipelineDeterminismTest, RotomTrainerIsConfigInvariant) {
  const auto configs = AllConfigs();
  const auto reference = RunRotom(configs[0], /*use_ssl=*/false);
  EXPECT_GT(reference.steps, 0);
  ASSERT_FALSE(reference.loss_history.empty());
  for (size_t c = 1; c < configs.size(); ++c) {
    ExpectIdentical(reference, RunRotom(configs[c], /*use_ssl=*/false),
                    configs[c].label);
  }
}

TEST(PipelineDeterminismTest, RotomSslIsConfigInvariant) {
  const auto configs = AllConfigs();
  const auto reference = RunRotom(configs[0], /*use_ssl=*/true);
  ASSERT_FALSE(reference.loss_history.empty());
  // SSL adds the unlabeled-pool scoring path (cache-assembled batches);
  // spot-check the serial reference against the full pipeline at 1 and 4
  // threads to bound runtime.
  ExpectIdentical(reference, RunRotom(configs[3], /*use_ssl=*/true),
                  configs[3].label);
  ExpectIdentical(reference, RunRotom(configs[4], /*use_ssl=*/true),
                  configs[4].label);
}

TEST(PipelineDeterminismTest, InstrumentationIsResultInvariant) {
  // Metrics counters + trace spans must be pure observers: running the full
  // pipelined trainer with everything recording has to reproduce the
  // trajectory of a run with instrumentation switched off, bit for bit
  // (obs/metrics.h and obs/trace.h determinism contract).
  const auto configs = AllConfigs();
  const bool was_enabled = obs::Enabled();
  const std::string was_path = obs::TracePath();

  obs::SetEnabled(false);
  const auto reference = RunRotom(configs[4], /*use_ssl=*/true);
  ASSERT_FALSE(reference.loss_history.empty());

  obs::SetEnabled(true);
  const std::string trace_path =
      testing::TempDir() + "/rotom_determinism_trace.json";
  obs::SetTracePath(trace_path);
  const auto instrumented = RunRotom(configs[4], /*use_ssl=*/true);

  obs::SetTracePath(was_path);
  obs::SetEnabled(was_enabled);
  obs::ClearTrace();
  std::remove(trace_path.c_str());

  ExpectIdentical(reference, instrumented, "metrics+tracing on");
}

TEST(PipelineDeterminismTest, RunLogStreamIsConfigInvariant) {
  // The flight recorder's step/epoch events must be pure functions of the
  // training trajectory (obs/runlog.h determinism contract): byte-identical
  // across thread counts and cache/prefetch settings. Manifest and end
  // events are excluded — they intentionally carry wall-clock time and the
  // thread configuration.
  auto trajectory = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"event\": \"step\"") != std::string::npos ||
          line.find("\"event\": \"epoch\"") != std::string::npos)
        lines.push_back(line);
    }
    return lines;
  };
  auto run = [&](PipelineConfig config) {
    config.options.runlog_dir = testing::TempDir() + "/runlog_determinism";
    const auto result = RunRotom(config, /*use_ssl=*/false);
    EXPECT_FALSE(result.runlog_path.empty()) << config.label;
    auto lines = trajectory(result.runlog_path);
    std::remove(result.runlog_path.c_str());
    return lines;
  };
  const auto configs = AllConfigs();
  const auto reference = run(configs[0]);
  ASSERT_FALSE(reference.empty());
  for (size_t c = 1; c < configs.size(); ++c) {
    const auto candidate = run(configs[c]);
    ASSERT_EQ(reference.size(), candidate.size()) << configs[c].label;
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(reference[i], candidate[i])
          << configs[c].label << " diverged at event " << i;
    }
  }
}

TEST(PipelineDeterminismTest, MaskedLmPretrainIsConfigInvariant) {
  auto ds = TinyTask();
  auto run = [&](const PipelineConfig& config) {
    ThreadGuard guard(config.threads);
    Rng rng(13);
    auto vocab = TaskVocab();
    models::TransformerClassifier model(TinyConfig(), vocab, rng);
    models::PretrainOptions options;
    options.epochs = 2;
    options.batch_size = 4;
    options.pipeline = config.options;
    Rng train_rng(21);
    return PretrainMaskedLm(model, ds.unlabeled, train_rng, options);
  };
  const auto configs = AllConfigs();
  const float reference = run(configs[0]);
  for (size_t c = 1; c < configs.size(); ++c) {
    EXPECT_EQ(reference, run(configs[c])) << configs[c].label;
  }
}

TEST(PipelineDeterminismTest, SameOriginPretrainIsConfigInvariant) {
  auto ds = TinyTask();
  auto run = [&](const PipelineConfig& config) {
    ThreadGuard guard(config.threads);
    Rng rng(17);
    auto vocab = TaskVocab();
    models::TransformerClassifier model(TinyConfig(), vocab, rng);
    models::SameOriginOptions options;
    options.steps = 6;
    options.batch_size = 4;
    options.pipeline = config.options;
    Rng train_rng(23);
    return PretrainSameOrigin(model, ds.unlabeled, train_rng, options);
  };
  const auto configs = AllConfigs();
  const float reference = run(configs[0]);
  for (size_t c = 1; c < configs.size(); ++c) {
    EXPECT_EQ(reference, run(configs[c])) << configs[c].label;
  }
}

// ---------------------------------------------------------------------------
// Registry-vs-legacy operator equivalence: the OperatorRegistry refactor
// (DESIGN.md §11) must not change a single RNG draw for the nine original
// Table-3 operators. `legacy` below is a frozen copy of the pre-registry
// switch-dispatch implementations; every registered original must reproduce
// it bit-identically under the same SplitSeed stream. The one intended
// divergence: legacy token_del could empty a single-token input, the
// registry operator returns it unchanged (drawing nothing either way).
// ---------------------------------------------------------------------------

namespace legacy {

using augment::AugmentContext;
using augment::ColumnSpan;
using Tokens = std::vector<std::string>;

bool IsStructural(const std::string& token) {
  return token.size() >= 2 && token.front() == '[' && token.back() == ']';
}

std::vector<size_t> ContentPositions(const Tokens& tokens) {
  std::vector<size_t> out;
  for (size_t i = 0; i < tokens.size(); ++i)
    if (!IsStructural(tokens[i])) out.push_back(i);
  return out;
}

size_t SampleContentPosition(const Tokens& tokens,
                             const std::vector<size_t>& positions,
                             const AugmentContext& context, Rng& rng) {
  if (context.idf == nullptr) {
    return positions[rng.UniformInt(static_cast<int64_t>(positions.size()))];
  }
  std::vector<double> weights;
  weights.reserve(positions.size());
  for (size_t p : positions)
    weights.push_back(context.idf->CorruptionWeight(tokens[p]));
  return positions[rng.WeightedIndex(weights)];
}

std::vector<ColumnSpan> FindColumns(const Tokens& tokens, size_t range_begin,
                                    size_t range_end) {
  std::vector<ColumnSpan> cols;
  range_end = std::min(range_end, tokens.size());
  for (size_t i = range_begin; i < range_end; ++i) {
    if (tokens[i] == "[COL]") {
      if (!cols.empty()) cols.back().end = i;
      cols.push_back({i, range_end});
    }
  }
  return cols;
}

size_t FindEntitySep(const Tokens& tokens) {
  for (size_t i = 0; i < tokens.size(); ++i)
    if (tokens[i] == "[SEP]") return i;
  return tokens.size();
}

Tokens TokenDel(const Tokens& tokens, const AugmentContext& context,
                Rng& rng) {
  auto positions = ContentPositions(tokens);
  if (positions.empty()) return tokens;
  const size_t victim =
      legacy::SampleContentPosition(tokens, positions, context, rng);
  Tokens out;
  for (size_t i = 0; i < tokens.size(); ++i)
    if (i != victim) out.push_back(tokens[i]);
  return out;
}

Tokens TokenRepl(const Tokens& tokens, const AugmentContext& context,
                 Rng& rng) {
  auto positions = ContentPositions(tokens);
  if (positions.empty()) return tokens;
  if (context.synonyms != nullptr) {
    std::vector<size_t> with_syn;
    for (size_t p : positions)
      if (context.synonyms->HasSynonyms(tokens[p])) with_syn.push_back(p);
    if (!with_syn.empty()) positions = std::move(with_syn);
  }
  const size_t victim =
      legacy::SampleContentPosition(tokens, positions, context, rng);
  Tokens out = tokens;
  if (context.synonyms != nullptr &&
      context.synonyms->HasSynonyms(tokens[victim])) {
    const auto& syns = context.synonyms->Synonyms(tokens[victim]);
    out[victim] = syns[rng.UniformInt(static_cast<int64_t>(syns.size()))];
  }
  return out;
}

Tokens TokenSwap(const Tokens& tokens, Rng& rng) {
  auto positions = ContentPositions(tokens);
  if (positions.size() < 2) return tokens;
  const int64_t n = static_cast<int64_t>(positions.size());
  const size_t a = positions[rng.UniformInt(n)];
  size_t b = positions[rng.UniformInt(n)];
  int attempts = 0;
  while (b == a && attempts++ < 8) b = positions[rng.UniformInt(n)];
  Tokens out = tokens;
  std::swap(out[a], out[b]);
  return out;
}

Tokens TokenInsert(const Tokens& tokens, const AugmentContext& context,
                   Rng& rng) {
  auto positions = ContentPositions(tokens);
  if (positions.empty()) return tokens;
  const size_t anchor =
      legacy::SampleContentPosition(tokens, positions, context, rng);
  std::string inserted = tokens[anchor];
  if (context.synonyms != nullptr &&
      context.synonyms->HasSynonyms(tokens[anchor])) {
    const auto& syns = context.synonyms->Synonyms(tokens[anchor]);
    inserted = syns[rng.UniformInt(static_cast<int64_t>(syns.size()))];
  }
  Tokens out = tokens;
  out.insert(out.begin() + static_cast<int64_t>(anchor) + 1, inserted);
  return out;
}

std::pair<size_t, size_t> ContentRunAround(const Tokens& tokens,
                                           size_t start) {
  size_t lo = start;
  while (lo > 0 && !IsStructural(tokens[lo - 1])) --lo;
  size_t hi = start + 1;
  while (hi < tokens.size() && !IsStructural(tokens[hi])) ++hi;
  return {lo, hi};
}

Tokens SpanDel(const Tokens& tokens, const AugmentContext& context,
               Rng& rng) {
  auto positions = ContentPositions(tokens);
  if (positions.empty()) return tokens;
  const size_t anchor =
      legacy::SampleContentPosition(tokens, positions, context, rng);
  auto [lo, hi] = ContentRunAround(tokens, anchor);
  size_t span_len = std::min<size_t>(2 + rng.UniformInt(3), hi - lo);
  if (hi - lo == tokens.size() && span_len == tokens.size()) {
    span_len = tokens.size() - 1;
  }
  if (span_len == 0) return tokens;
  const size_t begin =
      lo + rng.UniformInt(static_cast<int64_t>(hi - lo - span_len) + 1);
  Tokens out;
  for (size_t i = 0; i < tokens.size(); ++i)
    if (i < begin || i >= begin + span_len) out.push_back(tokens[i]);
  return out;
}

Tokens SpanShuffle(const Tokens& tokens, const AugmentContext& context,
                   Rng& rng) {
  auto positions = ContentPositions(tokens);
  if (positions.empty()) return tokens;
  const size_t anchor =
      legacy::SampleContentPosition(tokens, positions, context, rng);
  auto [lo, hi] = ContentRunAround(tokens, anchor);
  const size_t span_len = std::min<size_t>(2 + rng.UniformInt(3), hi - lo);
  const size_t begin =
      lo + rng.UniformInt(static_cast<int64_t>(hi - lo - span_len) + 1);
  Tokens out = tokens;
  Tokens span(out.begin() + begin, out.begin() + begin + span_len);
  rng.Shuffle(span);
  std::copy(span.begin(), span.end(), out.begin() + begin);
  return out;
}

Tokens ColShuffle(const Tokens& tokens, Rng& rng) {
  const size_t sep = FindEntitySep(tokens);
  size_t begin = 0, end = tokens.size();
  if (sep < tokens.size()) {
    if (rng.Bernoulli(0.5)) {
      end = sep;
    } else {
      begin = sep + 1;
    }
  }
  auto cols = FindColumns(tokens, begin, end);
  if (cols.size() < 2) return tokens;
  const int64_t n = static_cast<int64_t>(cols.size());
  int64_t a = rng.UniformInt(n);
  int64_t b = rng.UniformInt(n);
  int attempts = 0;
  while (b == a && attempts++ < 8) b = rng.UniformInt(n);
  if (a == b) return tokens;
  if (a > b) std::swap(a, b);
  Tokens out(tokens.begin(), tokens.begin() + static_cast<int64_t>(begin));
  for (int64_t c = 0; c < n; ++c) {
    int64_t src = c == a ? b : (c == b ? a : c);
    out.insert(out.end(),
               tokens.begin() + static_cast<int64_t>(cols[src].begin),
               tokens.begin() + static_cast<int64_t>(cols[src].end));
  }
  out.insert(out.end(), tokens.begin() + static_cast<int64_t>(end),
             tokens.end());
  return out;
}

Tokens ColDel(const Tokens& tokens, Rng& rng) {
  const size_t sep = FindEntitySep(tokens);
  size_t begin = 0, end = tokens.size();
  if (sep < tokens.size()) {
    if (rng.Bernoulli(0.5)) {
      end = sep;
    } else {
      begin = sep + 1;
    }
  }
  auto cols = FindColumns(tokens, begin, end);
  if (cols.size() < 2) return tokens;
  const auto& victim = cols[rng.UniformInt(static_cast<int64_t>(cols.size()))];
  Tokens out;
  for (size_t i = 0; i < tokens.size(); ++i)
    if (i < victim.begin || i >= victim.end) out.push_back(tokens[i]);
  return out;
}

Tokens EntitySwap(const Tokens& tokens) {
  const size_t sep = FindEntitySep(tokens);
  if (sep >= tokens.size()) return tokens;
  Tokens out(tokens.begin() + static_cast<int64_t>(sep) + 1, tokens.end());
  out.push_back("[SEP]");
  out.insert(out.end(), tokens.begin(),
             tokens.begin() + static_cast<int64_t>(sep));
  return out;
}

Tokens Apply(const std::string& name, const Tokens& tokens,
             const AugmentContext& context, Rng& rng) {
  if (tokens.empty()) return tokens;
  if (name == "token_del") return TokenDel(tokens, context, rng);
  if (name == "token_repl") return TokenRepl(tokens, context, rng);
  if (name == "token_swap") return TokenSwap(tokens, rng);
  if (name == "token_insert") return TokenInsert(tokens, context, rng);
  if (name == "span_del") return SpanDel(tokens, context, rng);
  if (name == "span_shuffle") return SpanShuffle(tokens, context, rng);
  if (name == "col_shuffle") return ColShuffle(tokens, rng);
  if (name == "col_del") return ColDel(tokens, rng);
  if (name == "entity_swap") return EntitySwap(tokens);
  ADD_FAILURE() << "no legacy reference for " << name;
  return tokens;
}

}  // namespace legacy

TEST(RegistryEquivalenceTest, OriginalOperatorsMatchLegacyBitForBit) {
  const std::vector<std::string> originals = {
      "token_del",  "token_repl",   "token_swap",  "token_insert", "span_del",
      "span_shuffle", "col_shuffle", "col_del",    "entity_swap"};
  const std::vector<std::string> inputs = {
      "where is the orange bowl ?",
      "really great movie",
      "[COL] title [VAL] efficient query processing [COL] year [VAL] 1999",
      "[COL] name [VAL] google llc [COL] phone [VAL] 123 [SEP] "
      "[COL] name [VAL] alphabet inc [COL] phone [VAL] 456",
      "great",
      "a b",
  };
  std::vector<std::vector<std::string>> docs;
  for (const auto& input : inputs) docs.push_back(text::Tokenize(input));
  const text::IdfTable idf = text::IdfTable::Build(docs);

  // Three context shapes: bare, synonyms-only, idf+synonyms — each arm of
  // the legacy branching.
  augment::AugmentContext bare;
  augment::AugmentContext with_syn;
  with_syn.synonyms = &augment::SynonymLexicon::Default();
  augment::AugmentContext full = with_syn;
  full.idf = &idf;

  for (const auto& name : originals) {
    const augment::Operator& op =
        augment::OperatorRegistry::Global().Require(name);
    for (const auto* context : {&bare, &with_syn, &full}) {
      for (uint64_t epoch_seed : {1u, 2u, 3u}) {
        for (size_t i = 0; i < inputs.size(); ++i) {
          // The per-example stream the trainers use (SplitSeed), so the
          // comparison runs under realistic seeds, many per operator.
          Rng new_rng(SplitSeed(epoch_seed, i));
          Rng old_rng(SplitSeed(epoch_seed, i));
          const auto tokens = text::Tokenize(inputs[i]);
          for (int trial = 0; trial < 8; ++trial) {
            const auto got = op.Apply(tokens, *context, new_rng);
            const auto want = legacy::Apply(name, tokens, *context, old_rng);
            if (name == "token_del" && tokens.size() == 1 && want.empty()) {
              // The one intended fix: never empty the sequence.
              EXPECT_EQ(got, tokens) << name;
            } else {
              ASSERT_EQ(got, want)
                  << name << " on '" << inputs[i] << "' trial " << trial;
            }
          }
          // Both sides must have consumed the same number of draws or the
          // streams of everything sampled afterwards would shift. The
          // single-token token_del fix is again the one exception: legacy
          // drew a position before emptying, the registry operator returns
          // early without drawing.
          if (!(name == "token_del" && tokens.size() == 1)) {
            EXPECT_EQ(new_rng.Next64(), old_rng.Next64()) << name;
          }
        }
      }
    }
  }
}

TEST(RegistryEquivalenceTest, DefaultOpsMatchLegacyOpsForTask) {
  // OpsForTask(is_pair, is_record) sized 6 / 8 / 9 in the enum order the
  // trainers indexed with rng.UniformInt — DefaultOps must list the same
  // names in the same order or candidate sampling shifts.
  auto names = [](bool pair, bool record) {
    std::vector<std::string> out;
    for (const auto* op :
         augment::OperatorRegistry::Global().DefaultOps(pair, record)) {
      out.push_back(op->name());
    }
    return out;
  };
  const std::vector<std::string> base = {"token_del",  "token_repl",
                                         "token_swap", "token_insert",
                                         "span_del",   "span_shuffle"};
  EXPECT_EQ(names(false, false), base);
  auto record = base;
  record.push_back("col_shuffle");
  record.push_back("col_del");
  EXPECT_EQ(names(false, true), record);
  auto pair_record = record;
  pair_record.push_back("entity_swap");
  EXPECT_EQ(names(true, true), pair_record);
}

}  // namespace
}  // namespace rotom
