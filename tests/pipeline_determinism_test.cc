// Trainer-level determinism of the pipelined data path: the encoding cache,
// the background prefetcher, and the compute-pool size are pure performance
// knobs, so every configuration must produce bit-identical loss trajectories
// (core/pipeline.h contract; DESIGN.md §8). These tests train the real
// trainers on a tiny task under each configuration and compare
// TrainResult::loss_history float-for-float. scripts/check.sh additionally
// runs this binary under TSan at several pool sizes.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/finetune.h"
#include "core/rotom_trainer.h"
#include "models/pretrain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace rotom {
namespace {

std::shared_ptr<text::Vocabulary> TaskVocab() {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w :
       {"the", "movie", "was", "great", "terrible", "really", "a", "not",
        "good", "bad", "boring", "fantastic", "product", "awful", "fine"})
    vocab->AddToken(w);
  return vocab;
}

models::ClassifierConfig TinyConfig() {
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 10;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.1f;  // keep dropout on: it must not disturb determinism
  return config;
}

data::TaskDataset TinyTask() {
  data::TaskDataset ds;
  ds.name = "tiny";
  ds.num_classes = 2;
  const char* pos[] = {"the movie was great", "really great movie",
                       "a fantastic movie",   "the product was good",
                       "good good movie",     "really fine product"};
  const char* neg[] = {"the movie was terrible", "really bad movie",
                       "a boring movie",         "the product was awful",
                       "bad bad movie",          "really awful product"};
  for (const char* t : pos) ds.train.push_back({t, 1});
  for (const char* t : neg) ds.train.push_back({t, 0});
  ds.valid = ds.train;
  ds.test = {{"the movie was fantastic", 1}, {"a terrible movie", 0}};
  for (const auto& e : ds.train) ds.unlabeled.push_back(e.text);
  ds.unlabeled.push_back("really great product");
  ds.unlabeled.push_back("a bad boring movie");
  return ds;
}

// Deterministic, thread-safe augmenter: duplicates an rng-chosen token.
std::string DuplicateToken(const std::string& input, Rng& rng) {
  auto tokens = text::Tokenize(input);
  if (tokens.empty()) return input;
  const size_t i = rng.UniformInt(static_cast<int64_t>(tokens.size()));
  tokens.insert(tokens.begin() + i, tokens[i]);
  return text::Detokenize(tokens);
}

struct PipelineConfig {
  const char* label;
  core::PipelineOptions options;
  int threads;
};

// The serial reference (no cache, inline production, 1 pool thread) plus
// every knob flipped individually and all together.
std::vector<PipelineConfig> AllConfigs() {
  core::PipelineOptions off;
  off.cache_rows = 0;
  off.prefetch = false;
  core::PipelineOptions cache_only = off;
  cache_only.cache_rows = 1 << 12;
  core::PipelineOptions prefetch_only = off;
  prefetch_only.prefetch = true;
  core::PipelineOptions full;  // defaults: cache + prefetch
  return {{"serial/1t", off, 1},
          {"cache/1t", cache_only, 1},
          {"prefetch/1t", prefetch_only, 1},
          {"full/1t", full, 1},
          {"full/4t", full, 4}};
}

class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { SetComputeThreads(n); }
  ~ThreadGuard() { SetComputeThreads(0); }
};

core::TrainResult RunFinetune(const PipelineConfig& config,
                              core::AugMode mode) {
  ThreadGuard guard(config.threads);
  Rng rng(7);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::FinetuneOptions options;
  options.epochs = 3;
  options.batch_size = 4;
  options.aug_mode = mode;
  options.seed = 5;
  options.pipeline = config.options;
  core::FinetuneTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  return trainer.Train(TinyTask(), DuplicateToken);
}

core::TrainResult RunRotom(const PipelineConfig& config, bool use_ssl) {
  ThreadGuard guard(config.threads);
  Rng rng(11);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::RotomOptions options;
  options.epochs = 2;
  options.batch_size = 4;
  options.augments_per_example = 2;
  options.use_ssl = use_ssl;
  options.ssl_warmup_epochs = 0;
  options.seed = 5;
  options.pipeline = config.options;
  core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  return trainer.Train(TinyTask(), [](const std::string& s, Rng& r) {
    return std::vector<std::string>{DuplicateToken(s, r),
                                    DuplicateToken(s, r)};
  });
}

void ExpectIdentical(const core::TrainResult& reference,
                     const core::TrainResult& candidate, const char* label) {
  EXPECT_EQ(reference.steps, candidate.steps) << label;
  ASSERT_EQ(reference.loss_history.size(), candidate.loss_history.size())
      << label;
  for (size_t i = 0; i < reference.loss_history.size(); ++i) {
    // Bit-identical, not approximately equal: the data path must not touch
    // numerics at all.
    ASSERT_EQ(reference.loss_history[i], candidate.loss_history[i])
        << label << " diverged at step " << i;
  }
  EXPECT_EQ(reference.best_valid_metric, candidate.best_valid_metric) << label;
}

TEST(PipelineDeterminismTest, FinetuneReplaceModeIsConfigInvariant) {
  const auto configs = AllConfigs();
  const auto reference = RunFinetune(configs[0], core::AugMode::kReplace);
  EXPECT_GT(reference.steps, 0);
  ASSERT_FALSE(reference.loss_history.empty());
  for (size_t c = 1; c < configs.size(); ++c) {
    ExpectIdentical(reference,
                    RunFinetune(configs[c], core::AugMode::kReplace),
                    configs[c].label);
  }
}

TEST(PipelineDeterminismTest, FinetuneMixDaModeIsConfigInvariant) {
  const auto configs = AllConfigs();
  const auto reference = RunFinetune(configs[0], core::AugMode::kMixDa);
  ASSERT_FALSE(reference.loss_history.empty());
  for (size_t c = 1; c < configs.size(); ++c) {
    ExpectIdentical(reference,
                    RunFinetune(configs[c], core::AugMode::kMixDa),
                    configs[c].label);
  }
}

TEST(PipelineDeterminismTest, RotomTrainerIsConfigInvariant) {
  const auto configs = AllConfigs();
  const auto reference = RunRotom(configs[0], /*use_ssl=*/false);
  EXPECT_GT(reference.steps, 0);
  ASSERT_FALSE(reference.loss_history.empty());
  for (size_t c = 1; c < configs.size(); ++c) {
    ExpectIdentical(reference, RunRotom(configs[c], /*use_ssl=*/false),
                    configs[c].label);
  }
}

TEST(PipelineDeterminismTest, RotomSslIsConfigInvariant) {
  const auto configs = AllConfigs();
  const auto reference = RunRotom(configs[0], /*use_ssl=*/true);
  ASSERT_FALSE(reference.loss_history.empty());
  // SSL adds the unlabeled-pool scoring path (cache-assembled batches);
  // spot-check the serial reference against the full pipeline at 1 and 4
  // threads to bound runtime.
  ExpectIdentical(reference, RunRotom(configs[3], /*use_ssl=*/true),
                  configs[3].label);
  ExpectIdentical(reference, RunRotom(configs[4], /*use_ssl=*/true),
                  configs[4].label);
}

TEST(PipelineDeterminismTest, InstrumentationIsResultInvariant) {
  // Metrics counters + trace spans must be pure observers: running the full
  // pipelined trainer with everything recording has to reproduce the
  // trajectory of a run with instrumentation switched off, bit for bit
  // (obs/metrics.h and obs/trace.h determinism contract).
  const auto configs = AllConfigs();
  const bool was_enabled = obs::Enabled();
  const std::string was_path = obs::TracePath();

  obs::SetEnabled(false);
  const auto reference = RunRotom(configs[4], /*use_ssl=*/true);
  ASSERT_FALSE(reference.loss_history.empty());

  obs::SetEnabled(true);
  const std::string trace_path =
      testing::TempDir() + "/rotom_determinism_trace.json";
  obs::SetTracePath(trace_path);
  const auto instrumented = RunRotom(configs[4], /*use_ssl=*/true);

  obs::SetTracePath(was_path);
  obs::SetEnabled(was_enabled);
  obs::ClearTrace();
  std::remove(trace_path.c_str());

  ExpectIdentical(reference, instrumented, "metrics+tracing on");
}

TEST(PipelineDeterminismTest, RunLogStreamIsConfigInvariant) {
  // The flight recorder's step/epoch events must be pure functions of the
  // training trajectory (obs/runlog.h determinism contract): byte-identical
  // across thread counts and cache/prefetch settings. Manifest and end
  // events are excluded — they intentionally carry wall-clock time and the
  // thread configuration.
  auto trajectory = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"event\": \"step\"") != std::string::npos ||
          line.find("\"event\": \"epoch\"") != std::string::npos)
        lines.push_back(line);
    }
    return lines;
  };
  auto run = [&](PipelineConfig config) {
    config.options.runlog_dir = testing::TempDir() + "/runlog_determinism";
    const auto result = RunRotom(config, /*use_ssl=*/false);
    EXPECT_FALSE(result.runlog_path.empty()) << config.label;
    auto lines = trajectory(result.runlog_path);
    std::remove(result.runlog_path.c_str());
    return lines;
  };
  const auto configs = AllConfigs();
  const auto reference = run(configs[0]);
  ASSERT_FALSE(reference.empty());
  for (size_t c = 1; c < configs.size(); ++c) {
    const auto candidate = run(configs[c]);
    ASSERT_EQ(reference.size(), candidate.size()) << configs[c].label;
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(reference[i], candidate[i])
          << configs[c].label << " diverged at event " << i;
    }
  }
}

TEST(PipelineDeterminismTest, MaskedLmPretrainIsConfigInvariant) {
  auto ds = TinyTask();
  auto run = [&](const PipelineConfig& config) {
    ThreadGuard guard(config.threads);
    Rng rng(13);
    auto vocab = TaskVocab();
    models::TransformerClassifier model(TinyConfig(), vocab, rng);
    models::PretrainOptions options;
    options.epochs = 2;
    options.batch_size = 4;
    options.pipeline = config.options;
    Rng train_rng(21);
    return PretrainMaskedLm(model, ds.unlabeled, train_rng, options);
  };
  const auto configs = AllConfigs();
  const float reference = run(configs[0]);
  for (size_t c = 1; c < configs.size(); ++c) {
    EXPECT_EQ(reference, run(configs[c])) << configs[c].label;
  }
}

TEST(PipelineDeterminismTest, SameOriginPretrainIsConfigInvariant) {
  auto ds = TinyTask();
  auto run = [&](const PipelineConfig& config) {
    ThreadGuard guard(config.threads);
    Rng rng(17);
    auto vocab = TaskVocab();
    models::TransformerClassifier model(TinyConfig(), vocab, rng);
    models::SameOriginOptions options;
    options.steps = 6;
    options.batch_size = 4;
    options.pipeline = config.options;
    Rng train_rng(23);
    return PretrainSameOrigin(model, ds.unlabeled, train_rng, options);
  };
  const auto configs = AllConfigs();
  const float reference = run(configs[0]);
  for (size_t c = 1; c < configs.size(); ++c) {
    EXPECT_EQ(reference, run(configs[c])) << configs[c].label;
  }
}

}  // namespace
}  // namespace rotom
