#include <atomic>
#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/filtering.h"
#include "core/finetune.h"
#include "core/rotom_trainer.h"
#include "core/ssl.h"
#include "core/weighting.h"
#include "nn/optim.h"

namespace rotom {
namespace {

using core::FilteringModel;
using core::WeightingModel;

std::shared_ptr<text::Vocabulary> TaskVocab() {
  auto vocab = std::make_shared<text::Vocabulary>();
  for (const char* w :
       {"the", "movie", "was", "great", "terrible", "really", "a", "not",
        "good", "bad", "boring", "fantastic", "product", "awful", "fine"})
    vocab->AddToken(w);
  return vocab;
}

models::ClassifierConfig TinyConfig() {
  models::ClassifierConfig config;
  config.num_classes = 2;
  config.max_len = 10;
  config.dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  return config;
}

// A tiny sentiment task where class-indicative words are unambiguous.
data::TaskDataset TinyTask() {
  data::TaskDataset ds;
  ds.name = "tiny";
  ds.num_classes = 2;
  const char* pos[] = {"the movie was great", "really great movie",
                       "a fantastic movie",   "the product was good",
                       "good good movie",     "really fine product"};
  const char* neg[] = {"the movie was terrible", "really bad movie",
                       "a boring movie",         "the product was awful",
                       "bad bad movie",          "really awful product"};
  for (const char* t : pos) ds.train.push_back({t, 1});
  for (const char* t : neg) ds.train.push_back({t, 0});
  ds.valid = ds.train;
  ds.test = {{"the movie was fantastic", 1}, {"a terrible movie", 0},
             {"really good product", 1},     {"the product was boring", 0}};
  for (const auto& e : ds.train) ds.unlabeled.push_back(e.text);
  ds.unlabeled.push_back("really great product");
  ds.unlabeled.push_back("a bad boring movie");
  return ds;
}

// Simple augmenter: duplicates a token (label-preserving-ish).
std::vector<std::string> DuplicateAugmenter(const std::string& input,
                                            Rng& rng) {
  auto tokens = text::Tokenize(input);
  if (tokens.empty()) return {input};
  const size_t i = rng.UniformInt(static_cast<int64_t>(tokens.size()));
  tokens.insert(tokens.begin() + i, tokens[i]);
  return {text::Detokenize(tokens)};
}

TEST(FilteringModelTest, FeatureLayout) {
  Tensor probs_orig = Tensor::FromVector({2, 2}, {0.9f, 0.1f, 0.2f, 0.8f});
  Tensor probs_aug = Tensor::FromVector({2, 2}, {0.9f, 0.1f, 0.8f, 0.2f});
  const Tensor features =
      FilteringModel::ComputeFeatures(probs_orig, probs_aug, {1, 0});
  EXPECT_EQ(features.shape(), (std::vector<int64_t>{2, 4}));
  // One-hot part.
  EXPECT_EQ(features.at({0, 0}), 0.0f);
  EXPECT_EQ(features.at({0, 1}), 1.0f);
  EXPECT_EQ(features.at({1, 0}), 1.0f);
  // KL part: identical distributions give ~0.
  EXPECT_NEAR(features.at({0, 2}), 0.0f, 1e-5f);
  EXPECT_NEAR(features.at({0, 3}), 0.0f, 1e-5f);
  // Row 1: distributions flipped -> positive KL sum.
  EXPECT_GT(features.at({1, 2}) + features.at({1, 3}), 0.1f);
}

TEST(FilteringModelTest, ForwardIsDistribution) {
  Rng rng(1);
  FilteringModel filter(2, rng);
  Tensor features({3, 4});
  Tensor probs = filter.Forward(features).value();
  for (int64_t i = 0; i < 3; ++i)
    EXPECT_NEAR(probs.at({i, 0}) + probs.at({i, 1}), 1.0f, 1e-5f);
}

TEST(FilteringModelTest, SampleDecisionsFollowProbs) {
  Rng rng(2);
  Tensor probs = Tensor::FromVector({2, 2}, {0.0f, 1.0f, 1.0f, 0.0f});
  auto decisions = FilteringModel::SampleDecisions(probs, rng);
  EXPECT_TRUE(decisions[0]);
  EXPECT_FALSE(decisions[1]);
}

TEST(FilteringModelTest, ReinforceMovesKeepProbability) {
  // With positive validation loss, kept examples' keep-probability should
  // DECREASE after a surrogate gradient step (the estimator pushes down
  // log-probs scaled by the loss). With enough steps the filter learns to
  // drop everything, demonstrating the gradient flows.
  Rng rng(3);
  FilteringModel filter(2, rng);
  nn::Adam opt(filter.Parameters(), 0.1f);
  Tensor features = Tensor::FromVector({2, 4}, {1, 0, 0.3f, 0.2f,
                                                0, 1, 0.0f, 0.1f});
  std::vector<bool> decisions = {true, true};
  const float before = filter.Forward(features).value().at({0, 1});
  for (int step = 0; step < 20; ++step) {
    opt.ZeroGrad();
    filter.ReinforceSurrogate(features, decisions, 2.0f).Backward();
    opt.Step();
  }
  const float after = filter.Forward(features).value().at({0, 1});
  EXPECT_LT(after, before);
}

TEST(FilteringModelTest, ReinforceIgnoresDroppedExamples) {
  Rng rng(4);
  FilteringModel filter(2, rng);
  Tensor features({2, 4});
  // Nothing kept -> surrogate is 0 and no gradient flows.
  filter.ZeroGrad();
  Variable surrogate =
      filter.ReinforceSurrogate(features, {false, false}, 1.0f);
  EXPECT_NEAR(surrogate.value()[0], 0.0f, 1e-6f);
}

TEST(WeightingModelTest, WeightsInExpectedRange) {
  Rng rng(5);
  auto vocab = TaskVocab();
  WeightingModel weighting(TinyConfig(), vocab, rng);
  weighting.SetTraining(false);
  Tensor l2 = Tensor::FromVector({2}, {0.5f, 0.0f});
  Rng fwd(1);
  Tensor w =
      weighting.Weights({"the movie was great", "a boring movie"}, l2, fwd)
          .value();
  // sigmoid output in (0,1) plus the L2 term.
  EXPECT_GT(w[0], 0.5f);
  EXPECT_LT(w[0], 1.5f);
  EXPECT_GT(w[1], 0.0f);
  EXPECT_LT(w[1], 1.0f);
}

TEST(WeightingModelTest, L2TermMatchesDefinition) {
  Tensor probs = Tensor::FromVector({2, 2}, {1.0f, 0.0f, 0.5f, 0.5f});
  Tensor l2 = WeightingModel::L2Term(probs, {0, 1});
  EXPECT_NEAR(l2[0], 0.0f, 1e-5f);
  EXPECT_NEAR(l2[1], std::sqrt(0.5f), 1e-5f);
}

TEST(WeightingModelTest, L2TermSoft) {
  Tensor probs = Tensor::FromVector({1, 2}, {0.7f, 0.3f});
  Tensor soft = Tensor::FromVector({1, 2}, {0.7f, 0.3f});
  EXPECT_NEAR(WeightingModel::L2TermSoft(probs, soft)[0], 0.0f, 1e-5f);
}

TEST(WeightingModelTest, GradientsFlowToLm) {
  Rng rng(6);
  auto vocab = TaskVocab();
  WeightingModel weighting(TinyConfig(), vocab, rng);
  weighting.SetTraining(false);
  Tensor l2({1});
  Rng fwd(1);
  Variable w = weighting.Weights({"the movie was great"}, l2, fwd);
  ops::Sum(w).Backward();
  int with_grad = 0;
  for (const auto& p : weighting.Parameters()) with_grad += p.has_grad();
  EXPECT_GT(with_grad, 0);
}

TEST(SharpenTest, V1SharpensTowardArgmax) {
  Tensor probs = Tensor::FromVector({1, 3}, {0.5f, 0.3f, 0.2f});
  Tensor sharp = core::SharpenV1(probs, 0.5);
  EXPECT_GT(sharp.at({0, 0}), 0.5f);
  float sum = 0.0f;
  for (int64_t j = 0; j < 3; ++j) sum += sharp.at({0, j});
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(SharpenTest, V1TemperatureOneIsIdentity) {
  Tensor probs = Tensor::FromVector({1, 2}, {0.6f, 0.4f});
  Tensor sharp = core::SharpenV1(probs, 1.0);
  EXPECT_NEAR(sharp.at({0, 0}), 0.6f, 1e-5f);
}

TEST(SharpenTest, V2ThresholdGating) {
  Tensor probs = Tensor::FromVector({2, 2}, {0.95f, 0.05f, 0.6f, 0.4f});
  auto out = core::SharpenV2(probs, 0.8);
  EXPECT_TRUE(out.confident[0]);
  EXPECT_FALSE(out.confident[1]);
  EXPECT_EQ(out.targets.at({0, 0}), 1.0f);
  EXPECT_EQ(out.targets.at({1, 0}), 0.0f);
}

TEST(FinetuneTrainerTest, BaselineLearnsTinyTask) {
  Rng rng(7);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::FinetuneOptions options;
  options.epochs = 20;
  options.batch_size = 4;
  options.lr = 2e-3f;
  core::FinetuneTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto ds = TinyTask();
  auto result = trainer.Train(ds);
  EXPECT_EQ(result.epochs_run, 20);
  EXPECT_GE(result.best_valid_metric, 90.0);
  // The model must at least fit its 12 training sentences; the 4-example
  // test set is too small for a stable generalization assertion.
  EXPECT_GE(eval::EvaluateModel(model, ds.train, eval::MetricKind::kAccuracy),
            90.0);
}

TEST(FinetuneTrainerTest, ReplaceModeUsesAugmenter) {
  Rng rng(8);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::FinetuneOptions options;
  options.epochs = 8;
  options.batch_size = 4;
  options.aug_mode = core::AugMode::kReplace;
  core::FinetuneTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto ds = TinyTask();
  // Augmenters run on compute-pool workers (finetune.h), so the counter
  // must be atomic.
  std::atomic<int> augmenter_calls{0};
  auto result = trainer.Train(ds, [&](const std::string& s, Rng& r) {
    ++augmenter_calls;
    return DuplicateAugmenter(s, r)[0];
  });
  EXPECT_GT(augmenter_calls.load(), 0);
  EXPECT_GT(result.best_valid_metric, 50.0);
}

TEST(FinetuneTrainerTest, MixDaModeRuns) {
  Rng rng(9);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::FinetuneOptions options;
  options.epochs = 6;
  options.batch_size = 4;
  options.aug_mode = core::AugMode::kMixDa;
  core::FinetuneTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto ds = TinyTask();
  auto result = trainer.Train(ds, [&](const std::string& s, Rng& r) {
    return DuplicateAugmenter(s, r)[0];
  });
  EXPECT_GT(result.best_valid_metric, 50.0);
}

TEST(FinetuneTrainerTest, AugModesRequireAugmenter) {
  Rng rng(10);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::FinetuneOptions options;
  options.aug_mode = core::AugMode::kReplace;
  core::FinetuneTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto ds = TinyTask();
  EXPECT_DEATH(trainer.Train(ds), "TextAugmenter");
}

core::RotomOptions SmallRotomOptions() {
  core::RotomOptions options;
  options.epochs = 4;
  options.batch_size = 6;
  options.lr = 2e-3f;
  options.meta_lr = 2e-3f;
  options.augments_per_example = 1;
  options.seed = 11;
  return options;
}

TEST(RotomTrainerTest, LearnsTinyTask) {
  Rng rng(11);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy,
                             SmallRotomOptions());
  auto ds = TinyTask();
  auto result = trainer.Train(ds, DuplicateAugmenter);
  EXPECT_EQ(result.epochs_run, 4);
  EXPECT_GT(result.best_valid_metric, 60.0);
  EXPECT_GT(trainer.last_keep_fraction(), 0.0);
  EXPECT_LE(trainer.last_keep_fraction(), 1.0);
}

TEST(RotomTrainerTest, SslVariantRuns) {
  Rng rng(12);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  auto options = SmallRotomOptions();
  options.use_ssl = true;
  options.epochs = 3;
  core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto ds = TinyTask();
  auto result = trainer.Train(ds, DuplicateAugmenter);
  EXPECT_EQ(result.epochs_run, 3);
  EXPECT_GE(result.best_valid_metric, 50.0);
}

TEST(RotomTrainerTest, AblationFlagsRun) {
  auto ds = TinyTask();
  for (int variant = 0; variant < 3; ++variant) {
    Rng rng(13 + variant);
    auto vocab = TaskVocab();
    models::TransformerClassifier model(TinyConfig(), vocab, rng);
    auto options = SmallRotomOptions();
    options.epochs = 2;
    if (variant == 0) options.use_filtering = false;
    if (variant == 1) options.use_weighting = false;
    if (variant == 2) options.use_l2_term = false;
    core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
    auto result = trainer.Train(ds, DuplicateAugmenter);
    EXPECT_EQ(result.epochs_run, 2) << "variant " << variant;
  }
}

TEST(RotomTrainerTest, FilterKeepsFractionBelowOneWhenAugsAreCorrupt) {
  // Augmenter that flips sentiment words: clearly label-corrupting. The
  // filter should learn to drop a noticeable share of augmentations.
  Rng rng(16);
  auto vocab = TaskVocab();
  models::TransformerClassifier model(TinyConfig(), vocab, rng);
  auto options = SmallRotomOptions();
  options.epochs = 5;
  core::RotomTrainer trainer(&model, eval::MetricKind::kAccuracy, options);
  auto ds = TinyTask();
  auto corrupting = [](const std::string& input, Rng&) {
    std::string out = input;
    auto flip = [&](const std::string& from, const std::string& to) {
      const size_t pos = out.find(from);
      if (pos != std::string::npos) out.replace(pos, from.size(), to);
    };
    flip("great", "terrible");
    flip("good", "bad");
    flip("fantastic", "awful");
    return std::vector<std::string>{out};
  };
  trainer.Train(ds, corrupting);
  EXPECT_LT(trainer.last_keep_fraction(), 1.0);
}

}  // namespace
}  // namespace rotom
